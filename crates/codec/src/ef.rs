//! Elias–Fano (quasi-succinct) encoding — paper Fig. 4 and §3.1.1.
//!
//! For a non-decreasing sequence of `n` values bounded by `U`, each value is
//! split into `b = floor(log2(U/n))` low bits, stored verbatim in the
//! *low-bits array*, and its remaining high bits, stored as a unary-coded
//! gap stream in the *high-bits array*: each element contributes
//! `high[i] - high[i-1]` zeros and one terminating `1`.
//!
//! Decompression recovers `high[i]` as `(bit position of the i-th one) - i`
//! — a pure function of popcounts over the high-bits words, which is what
//! makes the scheme parallel-friendly (Griffin-GPU's Para-EF exploits
//! exactly this; see `griffin-gpu::para_ef`).

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// One Elias–Fano-encoded block of values (relative to an external base).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EfBlock {
    /// Number of encoded values.
    pub count: u32,
    /// Low bits per value.
    pub b: u32,
    /// Unary-coded high-bits stream, 32-bit words, LSB-first.
    pub hb_words: Vec<u32>,
    /// Packed low-bits stream, `count * b` bits.
    pub lb_words: Vec<u32>,
}

/// A borrowed view of an encoded Elias–Fano block: the [`EfBlock`] header
/// fields with the high- and low-bits streams pointing into the serialized
/// word stream. Parsing one is allocation-free — [`EfBlock::from_words`]
/// copies both streams into fresh `Vec`s, which the per-block decode hot
/// path cannot afford.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EfBlockRef<'a> {
    /// Number of encoded values.
    pub count: u32,
    /// Low bits per value.
    pub b: u32,
    /// Unary-coded high-bits stream, 32-bit words, LSB-first.
    pub hb_words: &'a [u32],
    /// Packed low-bits stream, `count * b` bits.
    pub lb_words: &'a [u32],
}

impl<'a> EfBlockRef<'a> {
    /// Zero-copy inverse of [`EfBlock::to_words`]. Fails when the header
    /// is impossible (low-bit width ≥ 32) or the stream is shorter than
    /// the header claims.
    pub fn parse(words: &'a [u32]) -> Result<EfBlockRef<'a>, CodecError> {
        let header = *words.first().ok_or(CodecError::Truncated)?;
        let count = header & 0xFFFF;
        let b = (header >> 16) & 0x3F;
        if b >= 32 {
            return Err(CodecError::BadHeader);
        }
        let hb_len = (header >> 22) as usize;
        let lb_len = ((count as usize) * b as usize).div_ceil(32);
        if words.len() < 1 + hb_len + lb_len {
            return Err(CodecError::Truncated);
        }
        Ok(EfBlockRef {
            count,
            b,
            hb_words: &words[1..1 + hb_len],
            lb_words: &words[1 + hb_len..1 + hb_len + lb_len],
        })
    }

    /// Decodes all values, appending them to `out` with `base` added;
    /// same semantics as [`EfBlock::decode_into`] (failure leaves `out`
    /// untouched).
    pub fn decode_into(&self, base: u32, out: &mut Vec<u32>) -> Result<(), CodecError> {
        let start = out.len();
        out.reserve(self.count as usize);
        let mut hb = BitReader::new(self.hb_words);
        let mut lb = BitReader::new(self.lb_words);
        let mut high = 0u32;
        for _ in 0..self.count {
            let r = (|| -> Result<u32, CodecError> {
                high = high.wrapping_add(hb.read_unary()?);
                let low = if self.b > 0 { lb.read_bits(self.b)? } else { 0 };
                Ok(base.wrapping_add((high << self.b) | low))
            })();
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    out.truncate(start);
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

/// Chooses the low-bit width for `n` values in universe `[0, u]`.
pub fn low_bits_for(n: usize, u: u32) -> u32 {
    if n == 0 || u == 0 {
        return 0;
    }
    let ratio = u as u64 / n as u64;
    if ratio <= 1 {
        0
    } else {
        63 - ratio.leading_zeros() // floor(log2(ratio))
    }
}

impl EfBlock {
    /// Encodes `values`, which must be non-decreasing. Values are typically
    /// docIDs relative to the block base.
    pub fn encode(values: &[u32]) -> EfBlock {
        let n = values.len();
        if n == 0 {
            return EfBlock {
                count: 0,
                b: 0,
                hb_words: Vec::new(),
                lb_words: Vec::new(),
            };
        }
        let max = *values.last().expect("non-empty");
        debug_assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "values must be sorted"
        );
        let b = low_bits_for(n, max);

        let mut hb = BitWriter::new();
        let mut lb = BitWriter::new();
        let mut prev_high = 0u32;
        for &v in values {
            let high = v >> b;
            hb.write_unary(high - prev_high);
            prev_high = high;
            if b > 0 {
                lb.write_bits(v, b);
            }
        }
        EfBlock {
            count: n as u32,
            b,
            hb_words: hb.finish(),
            lb_words: lb.finish(),
        }
    }

    /// A borrowed view of this block (see [`EfBlockRef`]).
    pub fn as_ref(&self) -> EfBlockRef<'_> {
        EfBlockRef {
            count: self.count,
            b: self.b,
            hb_words: &self.hb_words,
            lb_words: &self.lb_words,
        }
    }

    /// Decodes all values, appending them to `out` with `base` added.
    ///
    /// Fails (leaving `out` exactly as it was) when the high- or low-bits
    /// streams end before `count` values have been recovered — a corrupt or
    /// truncated block. Arithmetic wraps so bit-flipped input cannot panic
    /// on overflow; valid blocks are unaffected (encode never overflows).
    pub fn decode_into(&self, base: u32, out: &mut Vec<u32>) -> Result<(), CodecError> {
        self.as_ref().decode_into(base, out)
    }

    /// Random access to the `i`-th value (relative). Linear in the high-bits
    /// stream; used by tests and by binary search *within* a decoded block
    /// the CPU engine performs on skipped lookups.
    /// Panics on corrupt blocks; random access is only used on blocks that
    /// came out of [`Self::encode`] (the bulk decode path is fallible).
    pub fn get(&self, i: usize) -> u32 {
        assert!((i as u32) < self.count, "index {i} out of {}", self.count);
        let mut hb = BitReader::new(&self.hb_words);
        let mut high = 0u32;
        for _ in 0..=i {
            high += hb.read_unary().expect("encoded block is self-consistent");
        }
        let low = if self.b > 0 {
            let mut lb = BitReader::at(&self.lb_words, i * self.b as usize);
            lb.read_bits(self.b)
                .expect("encoded block is self-consistent")
        } else {
            0
        };
        (high << self.b) | low
    }

    /// Size of the encoded block in bits (excluding framing).
    pub fn size_bits(&self) -> usize {
        // The high-bits stream logically ends at the last terminator; use
        // word-granular size since that is what we store and ship.
        (self.hb_words.len() + self.lb_words.len()) * 32
    }

    /// Serializes into a word stream: `[header, hb_words..., lb_words...]`.
    ///
    /// Header layout: `count:16 | b:6 | hb_len:10`.
    pub fn to_words(&self, out: &mut Vec<u32>) {
        assert!(self.count < (1 << 16));
        assert!(self.b < (1 << 6));
        assert!(
            self.hb_words.len() < (1 << 10),
            "high-bits array too long: {}",
            self.hb_words.len()
        );
        out.push(self.count | (self.b << 16) | ((self.hb_words.len() as u32) << 22));
        out.extend_from_slice(&self.hb_words);
        out.extend_from_slice(&self.lb_words);
    }

    /// Inverse of [`Self::to_words`]. Fails when the header is impossible
    /// (low-bit width ≥ 32) or the stream is shorter than the header claims.
    pub fn from_words(words: &[u32]) -> Result<EfBlock, CodecError> {
        let r = EfBlockRef::parse(words)?;
        Ok(EfBlock {
            count: r.count,
            b: r.b,
            hb_words: r.hb_words.to_vec(),
            lb_words: r.lb_words.to_vec(),
        })
    }

    /// Number of words [`Self::to_words`] produces.
    pub fn words_len(&self) -> usize {
        1 + self.hb_words.len() + self.lb_words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig4_example() {
        // Paper Fig. 4: sequence (5,6,8,15,18,33), U=36, b = floor(log2(36/6)) = 2.
        let values = [5u32, 6, 8, 15, 18, 33];
        let blk = EfBlock::encode(&values);
        // Our b uses max value (33): floor(log2(33/6)) = 2, same as paper.
        assert_eq!(blk.b, 2);
        let mut out = Vec::new();
        blk.decode_into(0, &mut out).unwrap();
        assert_eq!(out, values);
        // Low bits of each value (paper's low-bits array 01,10,00,11,10,01).
        let lows: Vec<u32> = values.iter().map(|v| v & 0b11).collect();
        assert_eq!(lows, vec![1, 2, 0, 3, 2, 1]);
    }

    #[test]
    fn roundtrip_various_shapes() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![0, 0, 0], // duplicates allowed (non-decreasing)
            vec![1, 2, 3, 4, 5],
            (0..128).map(|i| i * 1000).collect(),
            (0..128).collect(),
            vec![u32::MAX / 2, u32::MAX / 2 + 1],
        ];
        for values in cases {
            let blk = EfBlock::encode(&values);
            let mut out = Vec::new();
            blk.decode_into(0, &mut out).unwrap();
            assert_eq!(out, values, "roundtrip failed for {values:?}");
        }
    }

    #[test]
    fn decode_applies_base() {
        let values = [3u32, 10, 20];
        let blk = EfBlock::encode(&values);
        let mut out = Vec::new();
        blk.decode_into(100, &mut out).unwrap();
        assert_eq!(out, vec![103, 110, 120]);
    }

    #[test]
    fn random_access_matches_decode() {
        let values: Vec<u32> = (0..200).map(|i| i * 37 + (i % 5)).collect();
        let blk = EfBlock::encode(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(blk.get(i), v, "get({i})");
        }
    }

    #[test]
    fn word_serialization_roundtrip() {
        let values: Vec<u32> = (0..128).map(|i| i * 321).collect();
        let blk = EfBlock::encode(&values);
        let mut words = Vec::new();
        blk.to_words(&mut words);
        assert_eq!(words.len(), blk.words_len());
        let back = EfBlock::from_words(&words).unwrap();
        assert_eq!(back, blk);
    }

    #[test]
    fn dense_lists_compress_below_32_bits() {
        // 128 consecutive-ish docids: EF should be far below 32 bits/int.
        let values: Vec<u32> = (0..128).map(|i| i * 3).collect();
        let blk = EfBlock::encode(&values);
        let bits_per_int = blk.size_bits() as f64 / 128.0;
        assert!(bits_per_int < 8.0, "{bits_per_int} bits/int");
    }

    #[test]
    fn corrupt_words_decode_to_err_not_panic() {
        let values: Vec<u32> = (0..128).map(|i| i * 57).collect();
        let blk = EfBlock::encode(&values);
        let mut words = Vec::new();
        blk.to_words(&mut words);
        // Truncations at every length either fail in from_words or decode.
        for len in 0..words.len() {
            let mut out = Vec::new();
            if let Ok(b) = EfBlock::from_words(&words[..len]) {
                let _ = b.decode_into(0, &mut out);
            }
        }
        // A failed decode leaves the output buffer untouched.
        let short = EfBlock {
            hb_words: Vec::new(),
            ..blk.clone()
        };
        let mut out = vec![7u32];
        assert!(short.decode_into(0, &mut out).is_err());
        assert_eq!(out, vec![7]);
        // Impossible low-bit width in the header.
        let mut bad = words.clone();
        bad[0] = (bad[0] & !0x003F_0000) | (40 << 16);
        assert_eq!(EfBlock::from_words(&bad), Err(CodecError::BadHeader));
    }

    #[test]
    fn low_bits_formula() {
        assert_eq!(low_bits_for(6, 36), 2);
        assert_eq!(low_bits_for(128, 128), 0);
        assert_eq!(low_bits_for(1, 1 << 20), 20);
        assert_eq!(low_bits_for(0, 100), 0);
    }
}
