//! Byte-aligned variable-length integers (VByte) — the simple baseline
//! codec, also used for the term-frequency side files in the index.

use crate::error::CodecError;

/// Appends `v` as 1–5 VByte bytes (7 data bits per byte, high bit = more).
pub fn encode_u32(v: u32, out: &mut Vec<u8>) {
    let mut v = v;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one VByte value starting at `pos`; returns (value, new_pos).
///
/// Fails when the byte stream ends before a terminating byte
/// ([`CodecError::Truncated`]) or a value runs past the 32-bit range
/// ([`CodecError::MalformedVarint`]).
pub fn decode_u32(bytes: &[u8], pos: usize) -> Result<(u32, usize), CodecError> {
    let mut v = 0u32;
    let mut shift = 0u32;
    let mut p = pos;
    loop {
        let byte = *bytes.get(p).ok_or(CodecError::Truncated)?;
        p += 1;
        v |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok((v, p));
        }
        shift += 7;
        if shift >= 35 {
            return Err(CodecError::MalformedVarint);
        }
    }
}

/// Encodes a slice of values.
pub fn encode_slice(values: &[u32], out: &mut Vec<u8>) {
    for &v in values {
        encode_u32(v, out);
    }
}

/// Decodes exactly `n` values starting at `pos`; returns the new position.
/// On failure `out` is left exactly as it was.
pub fn decode_n(
    bytes: &[u8],
    pos: usize,
    n: usize,
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    let start = out.len();
    let mut p = pos;
    out.reserve(n);
    for _ in 0..n {
        match decode_u32(bytes, p) {
            Ok((v, np)) => {
                out.push(v);
                p = np;
            }
            Err(e) => {
                out.truncate(start);
                return Err(e);
            }
        }
    }
    Ok(p)
}

/// Decodes exactly `n` values from a byte stream packed little-endian
/// into 32-bit words (the [`crate::blocks`] framing), without
/// materializing the byte array. `nbytes` bounds the readable bytes. On
/// failure `out` is left exactly as it was.
pub fn decode_words_n(
    words: &[u32],
    nbytes: usize,
    n: usize,
    out: &mut Vec<u32>,
) -> Result<(), CodecError> {
    let start = out.len();
    out.reserve(n);
    let mut p = 0usize;
    'values: for _ in 0..n {
        let mut v = 0u32;
        let mut shift = 0u32;
        loop {
            if p >= nbytes || p / 4 >= words.len() {
                out.truncate(start);
                return Err(CodecError::Truncated);
            }
            let byte = (words[p / 4] >> (8 * (p % 4))) as u8;
            p += 1;
            v |= u32::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                out.push(v);
                continue 'values;
            }
            shift += 7;
            if shift >= 35 {
                out.truncate(start);
                return Err(CodecError::MalformedVarint);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_values() {
        for v in [0u32, 1, 127] {
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            assert_eq!(buf.len(), 1);
            assert_eq!(decode_u32(&buf, 0).unwrap(), (v, 1));
        }
    }

    #[test]
    fn boundary_widths() {
        let cases = [
            (127u32, 1usize),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u32::MAX, 5),
        ];
        for (v, len) in cases {
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            assert_eq!(buf.len(), len, "width of {v}");
            assert_eq!(decode_u32(&buf, 0).unwrap().0, v);
        }
    }

    #[test]
    fn slice_roundtrip() {
        let values: Vec<u32> = (0..1000).map(|i| i * 31 % 70_000).collect();
        let mut buf = Vec::new();
        encode_slice(&values, &mut buf);
        let mut out = Vec::new();
        let end = decode_n(&buf, 0, values.len(), &mut out).unwrap();
        assert_eq!(end, buf.len());
        assert_eq!(out, values);
    }

    #[test]
    fn corrupt_bytes_decode_to_err_not_panic() {
        // Continuation bit set on the last byte: truncated.
        assert_eq!(decode_u32(&[0x80], 0), Err(CodecError::Truncated));
        assert_eq!(decode_u32(&[], 0), Err(CodecError::Truncated));
        // Six continuation bytes overflow a u32.
        let overlong = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert_eq!(decode_u32(&overlong, 0), Err(CodecError::MalformedVarint));
        // decode_n leaves out untouched on failure.
        let mut out = vec![5u32];
        assert!(decode_n(&[0x01, 0x80], 0, 2, &mut out).is_err());
        assert_eq!(out, vec![5]);
    }
}
