//! Typed decode errors.
//!
//! Encoded blocks can arrive truncated or bit-flipped (disk corruption, a
//! failed PCIe transfer, a bad cache line). Decoders in this crate report
//! such input as a [`CodecError`] instead of panicking, so the engine can
//! fall back — re-fetch the block, or migrate the operation to a replica —
//! without tearing down the query.

use std::error::Error;
use std::fmt;

/// Why a decode failed. All variants mean the input words/bytes do not form
/// a valid encoded block; none of them indicate a bug in the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the payload its header declared.
    Truncated,
    /// A header field is impossible (e.g. a bit width above 32).
    BadHeader,
    /// A VByte value ran past the 32-bit range without terminating.
    MalformedVarint,
    /// A unary code ran off the end of the high-bits stream.
    UnaryOverrun,
    /// A PforDelta exception chain pointed outside its block.
    ExceptionChainOutOfBounds,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "encoded stream is truncated"),
            CodecError::BadHeader => write!(f, "encoded block header is invalid"),
            CodecError::MalformedVarint => write!(f, "malformed varint"),
            CodecError::UnaryOverrun => write!(f, "unary code ran off the stream"),
            CodecError::ExceptionChainOutOfBounds => {
                write!(f, "exception chain escaped the block")
            }
        }
    }
}

impl Error for CodecError {}
