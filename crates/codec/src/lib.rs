//! # griffin-codec — inverted-list compression
//!
//! The compression substrate of the Griffin reproduction (paper §2.1.1 and
//! §3.1.1). Inverted lists are stored in 128-element blocks; each block is
//! independently compressed so query processing can skip and decompress
//! blocks selectively (the foundation of the paper's ratio-128 crossover
//! analysis).
//!
//! Three codecs are provided:
//!
//! * [`pfordelta`] — the CPU-favoured scheme (paper Fig. 3): d-gaps packed
//!   in `b`-bit slots, with out-of-range *exceptions* stored uncompressed at
//!   the block tail and chained through the slots in linked-list manner.
//! * [`ef`] — Elias–Fano / quasi-succinct encoding (paper Fig. 4): each
//!   value splits into `b` low bits stored verbatim and high bits stored as
//!   a unary-coded gap stream. This is the scheme Griffin-GPU parallelizes
//!   (Para-EF), because element decompression has almost no sequential
//!   dependency.
//! * [`varint`] — byte-aligned VByte, a simple baseline.
//!
//! [`blocks`] frames any codec into a blocked list with per-block skip
//! metadata, and [`stats`] measures compression ratios (paper Table 1).
//!
//! Every decode path is fallible: corrupt or truncated input yields a
//! [`CodecError`] instead of a panic, so callers holding untrusted bytes
//! (a failed PCIe transfer, a bad disk block) can recover gracefully.

pub mod bitio;
pub mod blocks;
pub mod dgap;
pub mod ef;
pub mod error;
pub mod pfordelta;
pub mod stats;
pub mod varint;

pub use blocks::{BlockedList, BlockedListIter, Codec, SkipEntry, DEFAULT_BLOCK_LEN};
pub use ef::{EfBlock, EfBlockRef};
pub use error::CodecError;
pub use pfordelta::{PforBlock, PforBlockRef};
pub use stats::CompressionStats;
