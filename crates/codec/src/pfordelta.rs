//! PforDelta — the CPU-favoured codec (paper Fig. 3 and §2.1.1).
//!
//! A block of d-gaps is packed into fixed `b`-bit *slots*, where `b` is the
//! smallest width covering ~90% of the values. Values that do not fit
//! (*exceptions*) keep their slot, but the slot instead stores the offset to
//! the **next** exception, forming a linked list threaded through the block;
//! the actual exception values are stored uncompressed after the slots.
//!
//! This linked list is exactly why the paper rejects PforDelta on the GPU:
//! the exception chain must be walked sequentially, which serializes
//! decompression and causes thread divergence (§2.3).

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Fraction of values the regular slots must cover when choosing `b`.
const REGULAR_COVERAGE: f64 = 0.90;

/// An encoded PforDelta block (of d-gaps, relative values, or any small
/// u32s — the codec is oblivious to the gap transform).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PforBlock {
    pub count: u32,
    /// Slot width in bits (0 ⇒ every value is an exception).
    pub b: u32,
    /// Index of the first exception (== `count` when there are none).
    pub first_exception: u32,
    /// Packed `count * b`-bit slot array.
    pub slot_words: Vec<u32>,
    /// Uncompressed exception values, in chain (ascending index) order.
    pub exceptions: Vec<u32>,
}

/// A borrowed view of an encoded PforDelta block: the same header fields
/// as [`PforBlock`], with the slot and exception arrays pointing into the
/// serialized word stream instead of owning copies. Parsing one is
/// allocation-free, which is what the query engine's per-block hot path
/// needs — [`PforBlock::from_words`] copies two `Vec`s per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PforBlockRef<'a> {
    pub count: u32,
    /// Slot width in bits (32 ⇒ raw storage, no exceptions).
    pub b: u32,
    /// Index of the first exception (== `count` when there are none).
    pub first_exception: u32,
    /// Packed `count * b`-bit slot array.
    pub slot_words: &'a [u32],
    /// Uncompressed exception values, in chain (ascending index) order.
    pub exceptions: &'a [u32],
}

impl<'a> PforBlockRef<'a> {
    /// Zero-copy inverse of [`PforBlock::to_words`]. Fails when the
    /// header is impossible (slot width above 32) or the stream is
    /// shorter than the header claims.
    pub fn parse(words: &'a [u32]) -> Result<PforBlockRef<'a>, CodecError> {
        if words.len() < 2 {
            return Err(CodecError::Truncated);
        }
        let count = words[0] & 0xFFFF;
        let b = (words[0] >> 16) & 0x3F;
        if b > 32 {
            return Err(CodecError::BadHeader);
        }
        let first_exception = words[1] & 0xFFFF;
        let num_exc = (words[1] >> 16) as usize;
        let slot_len = (count as usize * b as usize).div_ceil(32);
        if words.len() < 2 + slot_len + num_exc {
            return Err(CodecError::Truncated);
        }
        Ok(PforBlockRef {
            count,
            b,
            first_exception,
            slot_words: &words[2..2 + slot_len],
            exceptions: &words[2 + slot_len..2 + slot_len + num_exc],
        })
    }

    /// Decodes the block, appending the original values to `out`; same
    /// semantics as [`PforBlock::decode_into`] (failure leaves `out`
    /// untouched).
    pub fn decode_into(&self, out: &mut Vec<u32>) -> Result<(), CodecError> {
        let start = out.len();
        match self.decode_into_inner(out) {
            Ok(()) => Ok(()),
            Err(e) => {
                out.truncate(start);
                Err(e)
            }
        }
    }

    fn decode_into_inner(&self, out: &mut Vec<u32>) -> Result<(), CodecError> {
        let n = self.count as usize;
        out.reserve(n);
        let start = out.len();
        let mut r = BitReader::new(self.slot_words);
        if self.b == 32 {
            for _ in 0..n {
                out.push(r.read_bits(32)?);
            }
            return Ok(());
        }
        for _ in 0..n {
            out.push(r.read_bits(self.b)?);
        }
        // Walk the exception chain, patching values. The slot of exception
        // `i` holds the offset to the next exception.
        patch_exceptions(&mut out[start..], self.first_exception, self.exceptions)
    }
}

/// Walks the exception chain over freshly unpacked slots, replacing each
/// chain slot (which held the offset to the next exception) with its
/// stored value. The walk is inherently serial — each hop depends on the
/// slot just patched — which is exactly why the paper keeps PforDelta off
/// the GPU; SIMD decode paths share this scalar patch step.
pub fn patch_exceptions(
    slots: &mut [u32],
    first_exception: u32,
    exceptions: &[u32],
) -> Result<(), CodecError> {
    let mut idx = first_exception as usize;
    for (k, &value) in exceptions.iter().enumerate() {
        if idx >= slots.len() {
            return Err(CodecError::ExceptionChainOutOfBounds);
        }
        let offset = slots[idx];
        slots[idx] = value;
        if k + 1 < exceptions.len() {
            idx = idx + offset as usize + 1;
        }
    }
    Ok(())
}

/// Smallest `b` such that at least 90% (`REGULAR_COVERAGE`) of `values` fit in
/// `b` bits. Returns 32 if the distribution is so heavy that full width is
/// needed.
pub fn choose_b(values: &[u32]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    let allowed = (values.len() as f64 * (1.0 - REGULAR_COVERAGE)).floor() as usize;
    let mut width_hist = [0usize; 33];
    for &v in values {
        width_hist[(32 - v.leading_zeros()) as usize] += 1;
    }
    let mut cum = 0usize;
    for b in 0..=32u32 {
        cum += width_hist[b as usize];
        let oversize = values.len() - cum;
        if oversize <= allowed {
            return b;
        }
    }
    32
}

impl PforBlock {
    /// Encodes `values`. Exceptions are values `>= 2^b`, plus *forced*
    /// exceptions inserted whenever the gap between consecutive exceptions
    /// exceeds what a `b`-bit offset can express.
    pub fn encode(values: &[u32]) -> PforBlock {
        let n = values.len();
        if n == 0 {
            return PforBlock {
                count: 0,
                b: 0,
                first_exception: 0,
                slot_words: Vec::new(),
                exceptions: Vec::new(),
            };
        }
        let b = choose_b(values);
        if b == 0 || b == 32 {
            // b == 0: slots cannot hold chain offsets, so everything is an
            // exception. b == 32: raw storage, no exceptions possible.
            // Both degenerate into "store raw"; flag with b = 32.
            let mut w = BitWriter::new();
            for &v in values {
                w.write_bits(v, 32);
            }
            return PforBlock {
                count: n as u32,
                b: 32,
                first_exception: n as u32,
                slot_words: w.finish(),
                exceptions: Vec::new(),
            };
        }

        let limit = 1u64 << b; // values >= limit are exceptions
        let max_offset = (limit - 1) as usize; // chain offset fits in b bits

        // Collect exception indices: natural + forced (chain reachability).
        let mut exc_idx: Vec<usize> = Vec::new();
        let mut last_exc: Option<usize> = None;
        for (i, &v) in values.iter().enumerate() {
            if u64::from(v) >= limit {
                // Back-fill forced exceptions so the chain can reach i in
                // hops of at most `max_offset` slots. (The first exception
                // needs no hop: the header addresses it directly.)
                if let Some(mut le) = last_exc {
                    while i - le > max_offset {
                        le += max_offset;
                        exc_idx.push(le);
                    }
                }
                exc_idx.push(i);
                last_exc = Some(i);
            }
        }

        let first_exception = *exc_idx.first().unwrap_or(&n) as u32;
        let is_exc = {
            let mut flags = vec![false; n];
            for &i in &exc_idx {
                flags[i] = true;
            }
            flags
        };

        let mut slots = BitWriter::new();
        let mut exceptions = Vec::with_capacity(exc_idx.len());
        let mut chain_pos = 0usize; // position within exc_idx
        for (i, &v) in values.iter().enumerate() {
            if is_exc[i] {
                exceptions.push(v);
                let next = exc_idx.get(chain_pos + 1).copied();
                let offset = match next {
                    Some(nx) => (nx - i - 1) as u32,
                    None => 0,
                };
                debug_assert!(u64::from(offset) < limit);
                slots.write_bits(offset, b);
                chain_pos += 1;
            } else {
                slots.write_bits(v, b);
            }
        }

        PforBlock {
            count: n as u32,
            b,
            first_exception,
            slot_words: slots.finish(),
            exceptions,
        }
    }

    /// A borrowed view of this block (see [`PforBlockRef`]).
    pub fn as_ref(&self) -> PforBlockRef<'_> {
        PforBlockRef {
            count: self.count,
            b: self.b,
            first_exception: self.first_exception,
            slot_words: &self.slot_words,
            exceptions: &self.exceptions,
        }
    }

    /// Decodes the block, appending the original values to `out`.
    ///
    /// Fails (leaving `out` exactly as it was) when the slot stream is
    /// shorter than `count` values or the exception chain walks outside the
    /// block — both symptoms of corrupt or truncated input.
    pub fn decode_into(&self, out: &mut Vec<u32>) -> Result<(), CodecError> {
        self.as_ref().decode_into(out)
    }

    /// Encoded size in bits (word-granular, as stored).
    pub fn size_bits(&self) -> usize {
        (2 + self.slot_words.len() + self.exceptions.len()) * 32
    }

    /// Serializes into a word stream:
    /// `[count:16|b:6|_, first_exception:16|num_exceptions:16, slots..., exceptions...]`.
    pub fn to_words(&self, out: &mut Vec<u32>) {
        assert!(self.count < (1 << 16));
        assert!(self.exceptions.len() < (1 << 16));
        out.push(self.count | (self.b << 16));
        out.push(self.first_exception | ((self.exceptions.len() as u32) << 16));
        out.extend_from_slice(&self.slot_words);
        out.extend_from_slice(&self.exceptions);
    }

    /// Inverse of [`Self::to_words`]. Fails when the header is impossible
    /// (slot width above 32) or the stream is shorter than the header claims.
    pub fn from_words(words: &[u32]) -> Result<PforBlock, CodecError> {
        let r = PforBlockRef::parse(words)?;
        Ok(PforBlock {
            count: r.count,
            b: r.b,
            first_exception: r.first_exception,
            slot_words: r.slot_words.to_vec(),
            exceptions: r.exceptions.to_vec(),
        })
    }

    pub fn words_len(&self) -> usize {
        2 + self.slot_words.len() + self.exceptions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> PforBlock {
        let blk = PforBlock::encode(values);
        let mut out = Vec::new();
        blk.decode_into(&mut out).unwrap();
        assert_eq!(out, values, "roundtrip failed (b={})", blk.b);
        blk
    }

    #[test]
    fn paper_fig3_style_block() {
        // Paper Fig. 3 d-gaps: (21,42,9,13,29,68,18,47) with b = 5 making
        // 42, 68, 47 exceptions.
        let gaps = [21u32, 42, 9, 13, 29, 68, 18, 47];
        let blk = roundtrip(&gaps);
        // Our 90% rule on 8 values allows 0 exceptions -> picks b = 7.
        // Force the paper's layout by checking the exception mechanics on a
        // block shaped so b = 5 emerges: replicate the small values.
        let mut many = Vec::new();
        for _ in 0..16 {
            many.extend_from_slice(&[21, 9, 13, 29, 18]);
        }
        many.extend_from_slice(&[42, 68, 47]); // few large values -> exceptions
        let blk2 = roundtrip(&many);
        assert!(blk2.b == 5, "expected 5-bit slots, got {}", blk2.b);
        assert_eq!(blk2.exceptions, vec![42, 68, 47]);
        let _ = blk;
    }

    #[test]
    fn no_exception_block() {
        let values: Vec<u32> = (0..128).map(|i| i % 30).collect();
        let blk = roundtrip(&values);
        assert_eq!(blk.first_exception, 128);
        assert!(blk.exceptions.is_empty());
    }

    #[test]
    fn all_large_values_degenerate_to_raw() {
        let values: Vec<u32> = (0..64).map(|i| u32::MAX - i).collect();
        let blk = roundtrip(&values);
        assert_eq!(blk.b, 32);
    }

    #[test]
    fn forced_exceptions_bridge_long_gaps() {
        // One huge value at each end, tiny values between: with a small b
        // the chain cannot jump the middle, so forced exceptions appear.
        let mut values = vec![1u32 << 20];
        values.extend(std::iter::repeat_n(1, 126));
        values.push(1 << 20);
        let blk = roundtrip(&values);
        assert!(
            blk.exceptions.len() > 2,
            "expected forced exceptions, got {:?}",
            blk.exceptions.len()
        );
    }

    #[test]
    fn exception_heavy_tail_distribution() {
        // Zipf-ish gaps: mostly small with occasional huge outliers.
        let values: Vec<u32> = (0..128)
            .map(|i| if i % 13 == 0 { 100_000 + i } else { i % 17 })
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn zeros_and_empty() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&vec![0u32; 128]);
    }

    #[test]
    fn word_serialization_roundtrip() {
        let values: Vec<u32> = (0..128)
            .map(|i| if i % 20 == 0 { 1 << 18 } else { i * 3 % 40 })
            .collect();
        let blk = PforBlock::encode(&values);
        let mut words = Vec::new();
        blk.to_words(&mut words);
        assert_eq!(words.len(), blk.words_len());
        let back = PforBlock::from_words(&words).unwrap();
        assert_eq!(back, blk);
        let mut out = Vec::new();
        back.decode_into(&mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn corrupt_words_decode_to_err_not_panic() {
        let values: Vec<u32> = (0..128)
            .map(|i| if i % 20 == 0 { 1 << 18 } else { i * 3 % 40 })
            .collect();
        let blk = PforBlock::encode(&values);
        let mut words = Vec::new();
        blk.to_words(&mut words);
        // Truncations at every length either fail in from_words or decode.
        for len in 0..words.len() {
            let mut out = Vec::new();
            if let Ok(b) = PforBlock::from_words(&words[..len]) {
                let _ = b.decode_into(&mut out);
            }
        }
        // A chain that escapes the block is an error, not a panic, and the
        // output buffer is untouched.
        let bad = PforBlock {
            first_exception: blk.count, // chain starts past the end
            ..blk.clone()
        };
        let mut out = vec![9u32];
        assert_eq!(
            bad.decode_into(&mut out),
            Err(CodecError::ExceptionChainOutOfBounds)
        );
        assert_eq!(out, vec![9]);
        // Impossible slot width in the header.
        let mut hdr = words.clone();
        hdr[0] = (hdr[0] & !0x003F_0000) | (33 << 16);
        assert_eq!(PforBlock::from_words(&hdr), Err(CodecError::BadHeader));
    }

    #[test]
    fn choose_b_respects_coverage() {
        // 100 values: 95 fit in 4 bits, 5 need 20 bits -> b should be 4ish.
        let mut values = vec![10u32; 95];
        values.extend(vec![1 << 19; 5]);
        let b = choose_b(&values);
        assert!(b <= 5, "b = {b}");
        // All values equal -> exact width.
        assert_eq!(choose_b(&[7u32; 50]), 3);
        assert_eq!(choose_b(&[]), 0);
    }
}
