//! Behavioural tests of the CPU engine: cost-model monotonicity, work
//! accounting of the different strategies, and property-based checks that
//! the instrumented algorithms match naive references.

use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_cpu::decode::{decode_list, decode_postings};
use griffin_cpu::intersect::{
    binary_intersect_decoded, gather_tfs, merge_intersect, skip_intersect,
};
use griffin_cpu::{CpuCostModel, CpuEngine, WorkCounters};
use griffin_index::{CompressedPostingList, InvertedIndex, Posting, TermId};
use proptest::collection::vec;
use proptest::prelude::*;

fn sorted_unique() -> impl Strategy<Value = Vec<u32>> {
    vec(0u32..200_000, 1..900).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn reference_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter()
        .filter(|v| b.binary_search(v).is_ok())
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_intersections_match_reference(a in sorted_unique(), b in sorted_unique()) {
        let reference = reference_intersect(&a, &b);
        let mut w = WorkCounters::default();
        prop_assert_eq!(merge_intersect(&a, &b, &mut w).docids, reference.clone());
        prop_assert_eq!(binary_intersect_decoded(&a, &b, &mut w).docids, reference.clone());
        for codec in [Codec::PforDelta, Codec::EliasFano] {
            let long = BlockedList::compress(&b, codec, DEFAULT_BLOCK_LEN);
            prop_assert_eq!(skip_intersect(&a, &long, &mut w).docids, reference.clone());
        }
    }

    #[test]
    fn decode_counters_are_exact(ids in sorted_unique()) {
        let list = BlockedList::compress(&ids, Codec::PforDelta, DEFAULT_BLOCK_LEN);
        let mut w = WorkCounters::default();
        let out = decode_list(&list, &mut w);
        prop_assert_eq!(out, ids.clone());
        prop_assert_eq!(w.pfor_elements as usize, ids.len());
        prop_assert_eq!(w.blocks_decoded as usize, list.num_blocks());
    }

    #[test]
    fn gather_tfs_matches_full_decode(ids in sorted_unique()) {
        let postings: Vec<Posting> = ids
            .iter()
            .enumerate()
            .map(|(i, &d)| Posting { docid: d, tf: (i % 13 + 1) as u32 })
            .collect();
        let list = CompressedPostingList::compress(&postings, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let (_, all_tfs) = {
            let mut w = WorkCounters::default();
            decode_postings(&list, &mut w)
        };
        // Gather a strided subset.
        let idx: Vec<u32> = (0..ids.len()).step_by(5).map(|i| i as u32).collect();
        let mut w = WorkCounters::default();
        let got = gather_tfs(&list, &idx, &mut w);
        let expect: Vec<u32> = idx.iter().map(|&i| all_tfs[i as usize]).collect();
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn skip_search_work_scales_with_short_list_not_long() {
    let long: Vec<u32> = (0..1_000_000u32).map(|i| i * 3).collect();
    let compressed = BlockedList::compress(&long, Codec::PforDelta, DEFAULT_BLOCK_LEN);
    let model = CpuCostModel::default();
    let mut times = Vec::new();
    for m in [100usize, 1_000] {
        let short: Vec<u32> = (0..m as u32)
            .map(|i| i * (3_000_000 / m as u32) + 1)
            .collect();
        let mut w = WorkCounters::default();
        skip_intersect(&short, &compressed, &mut w);
        times.push(model.time(&w).as_nanos() as f64);
    }
    let ratio = times[1] / times[0];
    assert!(
        (5.0..20.0).contains(&ratio),
        "10x more short elements should cost ~10x, got {ratio:.1}x"
    );
}

#[test]
fn merge_work_scales_with_combined_length() {
    let model = CpuCostModel::default();
    let mut times = Vec::new();
    for n in [100_000u32, 400_000] {
        let a: Vec<u32> = (0..n).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..n).map(|i| i * 2 + 1).collect();
        let mut w = WorkCounters::default();
        merge_intersect(&a, &b, &mut w);
        times.push(model.time(&w).as_nanos() as f64);
    }
    let ratio = times[1] / times[0];
    assert!(
        (3.0..5.0).contains(&ratio),
        "4x data should cost ~4x, got {ratio:.1}x"
    );
}

#[test]
fn query_over_different_codecs_returns_same_results() {
    let lists: Vec<Vec<u32>> = vec![
        (0..500u32).map(|i| i * 31 + 4).collect(),
        (0..4_000u32).map(|i| i * 4).collect(),
        (0..9_000u32).map(|i| i * 2).collect(),
    ];
    let mut outputs = Vec::new();
    for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
        let idx = InvertedIndex::from_docid_lists(&lists, 40_000, codec, 128);
        let terms: Vec<TermId> = (0..3)
            .map(|i| idx.lookup(&format!("t{i}")).unwrap())
            .collect();
        let engine = CpuEngine::new();
        outputs.push(engine.process_query(&idx, &terms, 10).topk);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

#[test]
fn cost_model_orders_strategies_sensibly() {
    // At very high ratio, skip must be cheaper than merge; at ratio ~1,
    // merge must be cheaper than per-element binary search.
    let model = CpuCostModel::default();
    let long: Vec<u32> = (0..500_000u32).map(|i| i * 2).collect();
    let compressed = BlockedList::compress(&long, Codec::PforDelta, DEFAULT_BLOCK_LEN);

    let tiny: Vec<u32> = (0..50u32).map(|i| i * 20_000).collect();
    let mut w_skip = WorkCounters::default();
    skip_intersect(&tiny, &compressed, &mut w_skip);
    let mut w_merge = WorkCounters::default();
    decode_list(&compressed, &mut w_merge);
    merge_intersect(&tiny, &long, &mut w_merge);
    assert!(model.time(&w_skip) < model.time(&w_merge) / 10);

    let similar: Vec<u32> = (0..400_000u32).map(|i| i * 2 + 1).collect();
    let mut w_m = WorkCounters::default();
    merge_intersect(&similar, &long, &mut w_m);
    let mut w_b = WorkCounters::default();
    binary_intersect_decoded(&similar, &long, &mut w_b);
    assert!(model.time(&w_m) < model.time(&w_b));
}
