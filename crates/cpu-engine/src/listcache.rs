//! Host-side decoded-list cache: the middle tier of Griffin's cache
//! hierarchy (device LRU below, query result cache above).
//!
//! Decoding a compressed posting list (PforDelta / Elias–Fano block
//! unpacking) dominates the CPU's merge-regime cost, and under Zipf
//! traffic the same hot lists decode over and over. This cache keeps the
//! *decoded docID vectors* of recently used lists behind `Arc`s so the
//! CPU engine can skip decompression entirely on a hit: the merge and
//! pure-binary strategies intersect against the cached vector, and the
//! skip strategy (including the split path's CPU lane) binary-searches
//! slices of it instead of decoding candidate blocks.
//!
//! The cache is a byte-budgeted LRU. A budget of 0 (the default)
//! disables it completely — every consult misses without counting, every
//! insert is dropped — so an engine with the cache off is bit- and
//! time-identical to one built before the cache existed. With the cache
//! on, results stay bit-exact (the cached vector *is* the decode output)
//! and virtual time is strictly no worse: the cached intersection paths
//! charge exactly the counters of their decoding twins minus the decode
//! work (see `intersect::skip_intersect_range_cached`).

use std::collections::HashMap;
use std::sync::Arc;

use griffin_index::TermId;

/// Fixed per-entry bookkeeping charged against the byte budget on top of
/// the decoded payload (map slot, `Arc` header, LRU stamp).
const ENTRY_OVERHEAD_BYTES: u64 = 64;

/// Hit/miss/eviction accounting, mirroring the device tier's
/// `CacheStats` so all tiers export under one metric scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostCacheStats {
    /// Consults answered from the cache.
    pub hits: u64,
    /// Consults that had to decode (only counted while the cache is
    /// enabled: a disabled cache is invisible, not "always missing").
    pub misses: u64,
    /// Entries displaced to fit newer ones within the byte budget.
    pub evictions: u64,
    /// Decoded bytes (plus per-entry overhead) currently resident.
    pub bytes_resident: u64,
}

impl HostCacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    decoded: Arc<Vec<u32>>,
    last_used: u64,
    bytes: u64,
}

/// Byte-budgeted LRU over decoded posting lists. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct HostListCache {
    map: HashMap<TermId, Entry>,
    clock: u64,
    bytes: u64,
    budget: u64,
    stats: HostCacheStats,
}

impl HostListCache {
    pub fn new(budget_bytes: u64) -> HostListCache {
        HostListCache {
            budget: budget_bytes,
            ..Default::default()
        }
    }

    /// Whether the cache participates at all (budget > 0).
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// The configured byte budget (0 = disabled).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Reconfigures the byte budget. Shrinking evicts LRU-first until the
    /// resident set fits; setting 0 clears the cache entirely.
    pub fn set_budget(&mut self, budget_bytes: u64) {
        self.budget = budget_bytes;
        if budget_bytes == 0 {
            self.clear();
        } else {
            self.evict_to_fit(0);
        }
    }

    /// Looks up a decoded list, bumping its LRU stamp. Counts a hit or a
    /// miss — call this only on paths that would otherwise decode.
    pub fn get(&mut self, term: TermId) -> Option<Arc<Vec<u32>>> {
        if !self.enabled() {
            return None;
        }
        self.clock += 1;
        match self.map.get_mut(&term) {
            Some(e) => {
                e.last_used = self.clock;
                self.stats.hits += 1;
                Some(Arc::clone(&e.decoded))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Non-counting residency probe for the cache-aware scheduler: does
    /// not touch LRU order or the hit/miss ledger.
    pub fn contains(&self, term: TermId) -> bool {
        self.enabled() && self.map.contains_key(&term)
    }

    /// Offers a freshly decoded list to the cache. Dropped when the cache
    /// is disabled or the list alone exceeds the budget; otherwise
    /// LRU-evicts until it fits.
    pub fn insert(&mut self, term: TermId, decoded: Arc<Vec<u32>>) {
        if !self.enabled() {
            return;
        }
        let bytes = (decoded.len() * std::mem::size_of::<u32>()) as u64 + ENTRY_OVERHEAD_BYTES;
        if bytes > self.budget {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.map.remove(&term) {
            self.bytes -= old.bytes;
        }
        self.evict_to_fit(bytes);
        self.bytes += bytes;
        self.map.insert(
            term,
            Entry {
                decoded,
                last_used: self.clock,
                bytes,
            },
        );
        self.stats.bytes_resident = self.bytes;
    }

    /// Evicts least-recently-used entries until `incoming` more bytes fit
    /// inside the budget.
    fn evict_to_fit(&mut self, incoming: u64) {
        while self.bytes + incoming > self.budget && !self.map.is_empty() {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&t, _)| t)
                .expect("non-empty map has a minimum");
            let e = self.map.remove(&victim).expect("victim is present");
            self.bytes -= e.bytes;
            self.stats.evictions += 1;
        }
        self.stats.bytes_resident = self.bytes;
    }

    /// Drops every entry (index epoch changed: TermIds may be remapped).
    /// The hit/miss/eviction history is kept; residency goes to zero.
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
        self.stats.bytes_resident = 0;
    }

    /// Decoded bytes (plus overhead) currently resident.
    pub fn bytes_resident(&self) -> u64 {
        self.bytes
    }

    /// Number of lists currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Snapshot of the accounting so far.
    pub fn stats(&self) -> HostCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(n: usize) -> Arc<Vec<u32>> {
        Arc::new((0..n as u32).collect())
    }

    #[test]
    fn disabled_cache_is_invisible() {
        let mut c = HostListCache::default();
        assert!(!c.enabled());
        assert_eq!(c.get(TermId(0)), None);
        c.insert(TermId(0), arc(10));
        assert_eq!(c.get(TermId(0)), None);
        let s = c.stats();
        assert_eq!(
            (s.hits, s.misses, s.evictions, s.bytes_resident),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn hits_after_insert_and_lru_eviction() {
        // Budget fits two 100-element lists (400 B + 64 B overhead each).
        let mut c = HostListCache::new(1_000);
        c.insert(TermId(1), arc(100));
        c.insert(TermId(2), arc(100));
        assert!(c.get(TermId(1)).is_some()); // bump 1: now 2 is LRU
        c.insert(TermId(3), arc(100)); // evicts 2
        assert!(c.contains(TermId(1)));
        assert!(!c.contains(TermId(2)));
        assert!(c.contains(TermId(3)));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes_resident <= 1_000);
    }

    #[test]
    fn budget_is_never_exceeded() {
        let mut c = HostListCache::new(2_000);
        for t in 0..50u32 {
            c.insert(TermId(t), arc(64 + (t as usize % 7) * 32));
            assert!(
                c.bytes_resident() <= 2_000,
                "resident {} over budget after insert {t}",
                c.bytes_resident()
            );
        }
    }

    #[test]
    fn oversized_lists_are_refused() {
        let mut c = HostListCache::new(100);
        c.insert(TermId(1), arc(1_000));
        assert!(!c.contains(TermId(1)));
        assert_eq!(c.bytes_resident(), 0);
    }

    #[test]
    fn shrinking_budget_evicts_and_zero_clears() {
        let mut c = HostListCache::new(10_000);
        for t in 0..8u32 {
            c.insert(TermId(t), arc(128));
        }
        c.set_budget(600);
        assert!(c.bytes_resident() <= 600);
        assert!(c.len() < 8);
        c.set_budget(0);
        assert!(c.is_empty());
        assert_eq!(c.bytes_resident(), 0);
    }

    #[test]
    fn contains_does_not_count_or_reorder() {
        let mut c = HostListCache::new(1_000);
        c.insert(TermId(1), arc(100));
        let before = c.stats();
        assert!(c.contains(TermId(1)));
        assert!(!c.contains(TermId(9)));
        assert_eq!(c.stats(), before);
    }
}
