//! Instrumented block decompression: bit-exact decoding that counts the
//! work it performs for the cost model.

use griffin_codec::ef::EfBlockRef;
use griffin_codec::pfordelta::PforBlockRef;
use griffin_codec::{BlockedList, Codec};
use griffin_index::CompressedPostingList;

use crate::cost::WorkCounters;
use crate::simd;

/// Decodes block `i` of `list`, appending docIDs to `out` and charging the
/// counters for the codec-specific work.
///
/// PforDelta and Elias–Fano blocks are parsed once into borrowed views and
/// decoded through the [`simd`] kernels (scalar or AVX2, chosen at
/// runtime); counters are charged from the skip entry and the parsed
/// header *before* decoding, so the charges are identical on every path.
pub fn decode_block(list: &BlockedList, i: usize, out: &mut Vec<u32>, w: &mut WorkCounters) {
    let skip = &list.skips[i];
    let count = u64::from(skip.count);
    w.blocks_decoded += 1;
    w.bytes_touched += u64::from(skip.word_len) * 4 + count * 4;
    let words = &list.words[skip.word_start as usize..(skip.word_start + skip.word_len) as usize];
    match list.codec {
        Codec::PforDelta => {
            // One parse serves both the exception count (the chain walk is
            // the data-dependent, serializing part of PforDelta) and the
            // decode itself — no second header pass, no owned copies.
            let blk =
                PforBlockRef::parse(words).expect("index-built list is valid by construction");
            w.pfor_elements += count;
            w.pfor_exceptions += blk.exceptions.len() as u64;
            simd::decode_pfor(&blk, list.block_base(i), out)
                .expect("index-built list is valid by construction");
        }
        Codec::EliasFano => {
            w.ef_elements += count;
            let blk = EfBlockRef::parse(words).expect("index-built list is valid by construction");
            simd::decode_ef(&blk, list.block_base(i), out)
                .expect("index-built list is valid by construction");
        }
        Codec::Varint => {
            w.varint_elements += count;
            list.decode_block_into(i, out)
                .expect("index-built list is valid by construction");
        }
    }
}

/// Fully decompresses `list`, counting all work.
pub fn decode_list(list: &BlockedList, w: &mut WorkCounters) -> Vec<u32> {
    let mut out = Vec::with_capacity(list.len());
    for i in 0..list.num_blocks() {
        decode_block(list, i, &mut out, w);
    }
    out
}

/// Fully decompresses a posting list (docIDs and term frequencies).
pub fn decode_postings(list: &CompressedPostingList, w: &mut WorkCounters) -> (Vec<u32>, Vec<u32>) {
    let mut docids = Vec::with_capacity(list.len());
    let mut tfs = Vec::with_capacity(list.len());
    // One scratch buffer reused across blocks (decode appends, so clear
    // each round): the allocation is paid once per list, not per block.
    let mut blk_tfs = Vec::new();
    for i in 0..list.num_blocks() {
        let before = docids.len();
        decode_block(&list.docs, i, &mut docids, w);
        blk_tfs.clear();
        list.decode_block_into_tfs_only(i, &mut blk_tfs);
        w.varint_elements += (docids.len() - before) as u64;
        tfs.extend_from_slice(&blk_tfs);
    }
    (docids, tfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::DEFAULT_BLOCK_LEN;

    fn docids(n: u32) -> Vec<u32> {
        (0..n).map(|i| i * 5 + 2).collect()
    }

    #[test]
    fn decode_list_counts_work() {
        let ids = docids(1000);
        let list = BlockedList::compress(&ids, Codec::PforDelta, DEFAULT_BLOCK_LEN);
        let mut w = WorkCounters::default();
        let out = decode_list(&list, &mut w);
        assert_eq!(out, ids);
        assert_eq!(w.blocks_decoded, 8);
        assert_eq!(w.pfor_elements, 1000);
        assert!(w.bytes_touched > 4000, "decoded output bytes counted");
    }

    #[test]
    fn ef_work_counted_separately() {
        let ids = docids(500);
        let list = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let mut w = WorkCounters::default();
        decode_list(&list, &mut w);
        assert_eq!(w.ef_elements, 500);
        assert_eq!(w.pfor_elements, 0);
    }

    #[test]
    fn single_block_decode() {
        let ids = docids(300);
        let list = BlockedList::compress(&ids, Codec::Varint, DEFAULT_BLOCK_LEN);
        let mut w = WorkCounters::default();
        let mut out = Vec::new();
        decode_block(&list, 1, &mut out, &mut w);
        assert_eq!(out, &ids[128..256]);
        assert_eq!(w.blocks_decoded, 1);
        assert_eq!(w.varint_elements, 128);
    }
}
