//! # griffin-cpu — the state-of-the-art CPU query engine
//!
//! Implements the paper's CPU baseline (§2.2, §3 "The CPU query processing
//! component implements state-of-the-art CPU query algorithms"):
//!
//! * block-wise decompression of PforDelta / Elias–Fano / VByte lists;
//! * **SvS** conjunctive query processing — pairwise intersections from the
//!   two shortest lists outward;
//! * two pairwise intersection strategies, chosen by list-length ratio:
//!   linear **merge** when lengths are comparable (great locality) and
//!   **skip-pointer binary search** when they differ widely (skips both
//!   comparisons and block decompression);
//! * **BM25** scoring accumulated incrementally through the intersections,
//!   and `partial_sort`-style top-k selection.
//!
//! All operations run for real (bit-exact results) while recording
//! [`WorkCounters`]; the [`cost`] model converts the counters into virtual
//! nanoseconds on a calibrated Xeon E5-2609v2-like core, putting the CPU
//! engine in the same time domain as the simulated GPU.

pub mod cost;
pub mod decode;
pub mod engine;
pub mod intersect;
pub mod listcache;
pub mod rank;
pub mod setops;
pub mod simd;
pub mod topk;

pub use cost::{set_info_counters, CpuConfig, CpuCostModel, WorkCounters};
pub use engine::{ChainResult, CpuEngine, Intermediate, PruneStats, PrunedOutput, QueryOutput};
pub use intersect::{Matches, QueryScratch};
pub use listcache::{HostCacheStats, HostListCache};
pub use rank::Bm25;
pub use simd::{ForceMode, KernelPath};
