//! SIMD kernel layer with runtime feature detection.
//!
//! Every hot kernel of the CPU engine — PforDelta/Elias–Fano bit-unpacking,
//! d-gap prefix sums, in-block membership search, and the block-max bound
//! fold — exists here in two implementations: a scalar path that is the
//! always-available reference, and an AVX2 path selected once per process
//! via `is_x86_feature_detected!`. The paths are **bit-exact**: same
//! outputs, same [`WorkCounters`](crate::cost::WorkCounters) charges, so
//! virtual time stays host- and path-independent (Lemire, Boytsov & Kurz,
//! "SIMD Compression and the Intersection of Sorted Integers", shifts
//! wall-clock constants 2–5× — which is exactly why wall-clock calibration
//! lives in `exp_kernels`, not here).
//!
//! Dispatch control:
//! * `GRIFFIN_FORCE_SCALAR=1` in the environment pins the scalar path for
//!   the whole process (read once, at first dispatch).
//! * [`set_forced`] overrides programmatically (tests and the calibration
//!   bench flip paths in-process to measure both).
//!
//! Which path actually ran is observable through [`dispatch_totals`]
//! (cumulative, process-wide, relaxed atomics — race-tolerant by design so
//! parallel tests never see torn readings).

use griffin_codec::dgap;
use griffin_codec::ef::EfBlockRef;
use griffin_codec::pfordelta::{patch_exceptions, PforBlockRef};
use griffin_codec::CodecError;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation a dispatch resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Portable scalar reference path.
    Scalar,
    /// 256-bit AVX2 path (x86-64 only, runtime-detected).
    Avx2,
}

impl KernelPath {
    pub fn name(&self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Avx2 => "avx2",
        }
    }
}

/// Programmatic dispatch override (see [`set_forced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForceMode {
    /// Honour the environment knob and runtime detection.
    #[default]
    Auto,
    /// Always take the scalar path.
    Scalar,
    /// Take the SIMD path when the host supports it (silently falls back
    /// to scalar when it does not — never unsound).
    Simd,
}

static FORCED: AtomicU8 = AtomicU8::new(0);
static DETECTED: OnceLock<KernelPath> = OnceLock::new();

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detected() -> KernelPath {
    *DETECTED.get_or_init(|| {
        let force_scalar = std::env::var("GRIFFIN_FORCE_SCALAR")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        if !force_scalar && avx2_available() {
            KernelPath::Avx2
        } else {
            KernelPath::Scalar
        }
    })
}

/// Overrides kernel dispatch for the whole process. `Auto` restores the
/// environment-knob + feature-detection default.
pub fn set_forced(mode: ForceMode) {
    FORCED.store(mode as u8, Ordering::Relaxed);
}

/// The path the next kernel dispatch will take.
pub fn active_path() -> KernelPath {
    match FORCED.load(Ordering::Relaxed) {
        1 => KernelPath::Scalar,
        2 => {
            if avx2_available() {
                KernelPath::Avx2
            } else {
                KernelPath::Scalar
            }
        }
        _ => detected(),
    }
}

/// Kernels whose dispatches are counted (order = counter layout).
pub const KERNEL_NAMES: [&str; 4] = ["decode_pfor", "decode_ef", "block_search", "bound_fold"];

const K_PFOR: usize = 0;
const K_EF: usize = 1;
const K_SEARCH: usize = 2;
const K_FOLD: usize = 3;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static DISPATCHES: [[AtomicU64; 2]; 4] = [[ZERO; 2], [ZERO; 2], [ZERO; 2], [ZERO; 2]];

#[inline]
fn note_dispatch(kernel: usize, path: KernelPath) {
    let p = match path {
        KernelPath::Scalar => 0,
        KernelPath::Avx2 => 1,
    };
    DISPATCHES[kernel][p].fetch_add(1, Ordering::Relaxed);
}

/// Cumulative process-wide dispatch counts: `(kernel, path, total)`.
/// Totals only grow; readers fold them as gauges, never as deltas.
pub fn dispatch_totals() -> Vec<(&'static str, &'static str, u64)> {
    let mut out = Vec::with_capacity(8);
    for (k, name) in KERNEL_NAMES.iter().enumerate() {
        out.push((*name, "scalar", DISPATCHES[k][0].load(Ordering::Relaxed)));
        out.push((*name, "avx2", DISPATCHES[k][1].load(Ordering::Relaxed)));
    }
    out
}

// ---------------------------------------------------------------------------
// b-bit unpack
// ---------------------------------------------------------------------------

/// Reads the `b`-bit slot starting at bit `bitpos` of an LSB-first packed
/// word stream — the branch-free scalar twin of `BitReader::read_bits`.
#[inline]
fn read_packed(words: &[u32], bitpos: usize, b: u32) -> u32 {
    let w = bitpos / 32;
    let s = (bitpos % 32) as u32;
    let mask = if b == 32 { u32::MAX } else { (1u32 << b) - 1 };
    let lo = words[w] >> s;
    if s + b <= 32 {
        lo & mask
    } else {
        (lo | (words[w + 1] << (32 - s))) & mask
    }
}

/// Appends `count` `b`-bit values unpacked from `words` to `out`.
/// Precondition (guaranteed by block parse): `words` holds at least
/// `count * b` bits.
fn unpack_bits_into(words: &[u32], count: usize, b: u32, out: &mut Vec<u32>, path: KernelPath) {
    if count == 0 {
        return;
    }
    if b == 0 {
        out.resize(out.len() + count, 0);
        return;
    }
    if b == 32 {
        out.extend_from_slice(&words[..count]);
        return;
    }
    out.reserve(count);
    let mut i = 0usize;
    #[cfg(target_arch = "x86_64")]
    if path == KernelPath::Avx2 {
        // Full 8-value groups whose second gather word stays in bounds.
        // The last group may straddle the final word; it goes scalar.
        while i + 8 <= count && ((i + 7) * b as usize) / 32 + 1 < words.len() {
            // SAFETY: AVX2 presence is the dispatch precondition; the
            // loop guard bounds every gathered word index.
            unsafe { unpack8_avx2(words, i, b, out) };
            i += 8;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = path;
    let mut bitpos = i * b as usize;
    while i < count {
        out.push(read_packed(words, bitpos, b));
        bitpos += b as usize;
        i += 1;
    }
}

/// Unpacks values `i..i+8` (width `b`, `0 < b < 32`) in one shot: gather
/// the straddled word pair per lane, variable-shift, mask. Shift counts of
/// 32 yield 0 under `vpsllvd`/`vpsrlvd`, which makes the `s == 0` lane
/// (no straddle) come out right without a branch.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn unpack8_avx2(words: &[u32], i: usize, b: u32, out: &mut Vec<u32>) {
    use std::arch::x86_64::*;
    let lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    let bitpos = _mm256_add_epi32(
        _mm256_set1_epi32((i as u32 * b) as i32),
        _mm256_mullo_epi32(lane, _mm256_set1_epi32(b as i32)),
    );
    let w = _mm256_srli_epi32::<5>(bitpos);
    let s = _mm256_and_si256(bitpos, _mm256_set1_epi32(31));
    let base = words.as_ptr() as *const i32;
    let w0 = _mm256_i32gather_epi32::<4>(base, w);
    let w1 = _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(w, _mm256_set1_epi32(1)));
    let lo = _mm256_srlv_epi32(w0, s);
    let hi = _mm256_sllv_epi32(w1, _mm256_sub_epi32(_mm256_set1_epi32(32), s));
    let mask = _mm256_set1_epi32(((1u32 << b) - 1) as i32);
    let v = _mm256_and_si256(_mm256_or_si256(lo, hi), mask);
    let len = out.len();
    debug_assert!(out.capacity() >= len + 8);
    _mm256_storeu_si256(out.as_mut_ptr().add(len) as *mut __m256i, v);
    out.set_len(len + 8);
}

// ---------------------------------------------------------------------------
// prefix sum
// ---------------------------------------------------------------------------

/// In-place inclusive prefix sum with carry-in `base`, wrapping u32
/// addition — semantically identical to `dgap::prefix_sum_in_place`
/// (wrapping addition is associative, so the in-register scan regroups
/// freely without changing any output bit).
fn prefix_sum(buf: &mut [u32], base: u32, path: KernelPath) {
    #[cfg(target_arch = "x86_64")]
    if path == KernelPath::Avx2 && buf.len() >= 8 {
        // SAFETY: AVX2 presence is the dispatch precondition.
        unsafe { prefix_sum_avx2(buf, base) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = path;
    dgap::prefix_sum_in_place(buf, base);
}

/// Hillis–Steele scan per 8-lane chunk: two in-lane shifted adds, one
/// cross-lane fix (add element 3's running total to the upper lane), then
/// the carry from the previous chunk broadcast-added on top.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn prefix_sum_avx2(buf: &mut [u32], base: u32) {
    use std::arch::x86_64::*;
    let mut carry = _mm256_set1_epi32(base as i32);
    let mut i = 0usize;
    while i + 8 <= buf.len() {
        let p = buf.as_mut_ptr().add(i) as *mut __m256i;
        let mut v = _mm256_loadu_si256(p as *const __m256i);
        v = _mm256_add_epi32(v, _mm256_slli_si256::<4>(v));
        v = _mm256_add_epi32(v, _mm256_slli_si256::<8>(v));
        let lane_total = _mm256_permutevar8x32_epi32(v, _mm256_set1_epi32(3));
        let upper_fix = _mm256_blend_epi32::<0b1111_0000>(_mm256_setzero_si256(), lane_total);
        v = _mm256_add_epi32(v, upper_fix);
        v = _mm256_add_epi32(v, carry);
        _mm256_storeu_si256(p, v);
        carry = _mm256_permutevar8x32_epi32(v, _mm256_set1_epi32(7));
        i += 8;
    }
    if i < buf.len() {
        let acc = if i == 0 { base } else { buf[i - 1] };
        dgap::prefix_sum_in_place(&mut buf[i..], acc);
    }
}

// ---------------------------------------------------------------------------
// block decode kernels
// ---------------------------------------------------------------------------

/// Decodes a parsed PforDelta block (unpack → exception patch → prefix
/// sum with `base`), appending absolute docIDs to `out`. Errors leave
/// `out` exactly as it was.
pub fn decode_pfor(
    blk: &PforBlockRef<'_>,
    base: u32,
    out: &mut Vec<u32>,
) -> Result<(), CodecError> {
    let path = active_path();
    note_dispatch(K_PFOR, path);
    decode_pfor_with(blk, base, out, path)
}

fn decode_pfor_with(
    blk: &PforBlockRef<'_>,
    base: u32,
    out: &mut Vec<u32>,
    path: KernelPath,
) -> Result<(), CodecError> {
    let start = out.len();
    unpack_bits_into(blk.slot_words, blk.count as usize, blk.b, out, path);
    // The exception chain is inherently serial (each slot points at the
    // next) — the very data dependency the paper cites when rejecting
    // PforDelta for the GPU. It stays scalar on every path.
    if let Err(e) = patch_exceptions(&mut out[start..], blk.first_exception, blk.exceptions) {
        out.truncate(start);
        return Err(e);
    }
    prefix_sum(&mut out[start..], base, path);
    Ok(())
}

/// Decodes a parsed Elias–Fano block, appending `base`-relative absolute
/// values to `out`. Low bits unpack vectorized; the unary high-bits scan
/// runs word-at-a-time via `trailing_zeros` (itself a 32× win over the
/// bit-serial reference reader). Errors leave `out` exactly as it was.
pub fn decode_ef(blk: &EfBlockRef<'_>, base: u32, out: &mut Vec<u32>) -> Result<(), CodecError> {
    let path = active_path();
    note_dispatch(K_EF, path);
    decode_ef_with(blk, base, out, path)
}

fn decode_ef_with(
    blk: &EfBlockRef<'_>,
    base: u32,
    out: &mut Vec<u32>,
    path: KernelPath,
) -> Result<(), CodecError> {
    if path == KernelPath::Scalar {
        return blk.decode_into(base, out);
    }
    let count = blk.count as usize;
    let start = out.len();
    unpack_bits_into(blk.lb_words, count, blk.b, out, path);
    // k-th set bit at absolute unary position p encodes high value p - k
    // (p+1 bits consumed = k+1 terminators + (p-k) zero gaps). Combining:
    // value = base + ((high << b) | low) = base +w (high << b) +w low,
    // exact because low < 2^b keeps the bit ranges disjoint.
    let mut k = 0usize;
    for (wi, &word) in blk.hb_words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            if k == count {
                break;
            }
            let tz = bits.trailing_zeros();
            let p = (wi * 32) as u32 + tz;
            let high = p - k as u32;
            out[start + k] = out[start + k].wrapping_add(base.wrapping_add(high << blk.b));
            bits &= bits - 1;
            k += 1;
        }
        if k == count {
            break;
        }
    }
    if k < count {
        out.truncate(start);
        return Err(CodecError::Truncated);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// in-block membership search
// ---------------------------------------------------------------------------

/// Probes a manual binary search of `hay[lo..hi)` for `target` would make,
/// replayed purely on indices. For sorted `hay` with distinct elements,
/// `hay[mid] < target ⟺ mid < p` and (on a hit) `hay[mid] == target ⟺
/// mid == p`, so the count is exact without touching memory.
fn binary_probe_count(len: usize, outcome: Result<usize, usize>) -> u64 {
    let (mut lo, mut hi) = (0usize, len);
    let mut probes = 0u64;
    match outcome {
        Ok(p) => {
            while lo < hi {
                probes += 1;
                let mid = lo + (hi - lo) / 2;
                match mid.cmp(&p) {
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                    std::cmp::Ordering::Equal => return probes,
                }
            }
            probes
        }
        Err(p) => {
            while lo < hi {
                probes += 1;
                let mid = lo + (hi - lo) / 2;
                if mid < p {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            probes
        }
    }
}

/// Membership search in one decoded block (sorted, distinct docIDs):
/// `Ok(pos)` on a hit, `Err(insertion_pos)` on a miss. Charges `probes`
/// exactly as the scalar binary search would, whichever path executes —
/// the invariant that keeps virtual time path-independent.
pub fn find_in_sorted_block(hay: &[u32], target: u32, probes: &mut u64) -> Result<usize, usize> {
    let path = active_path();
    note_dispatch(K_SEARCH, path);
    find_in_sorted_block_with(hay, target, probes, path)
}

fn find_in_sorted_block_with(
    hay: &[u32],
    target: u32,
    probes: &mut u64,
    path: KernelPath,
) -> Result<usize, usize> {
    #[cfg(target_arch = "x86_64")]
    if path == KernelPath::Avx2 {
        // SAFETY: AVX2 presence is the dispatch precondition.
        let outcome = unsafe { partition_point_avx2(hay, target) };
        *probes += binary_probe_count(hay.len(), outcome);
        return outcome;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = path;
    let (mut lo, mut hi) = (0usize, hay.len());
    while lo < hi {
        *probes += 1;
        let mid = lo + (hi - lo) / 2;
        match hay[mid].cmp(&target) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Branch-light linear scan, 8 lanes per step: unsigned compare via the
/// sign-bias trick, movemask, early-exit on the first lane `>= target`.
/// On a 128-element block this trades ~7 mispredicted binary-search
/// branches for ≤16 predictable vector compares over contiguous memory.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn partition_point_avx2(hay: &[u32], target: u32) -> Result<usize, usize> {
    use std::arch::x86_64::*;
    let bias = _mm256_set1_epi32(i32::MIN);
    let t = _mm256_xor_si256(_mm256_set1_epi32(target as i32), bias);
    let mut i = 0usize;
    while i + 8 <= hay.len() {
        let v = _mm256_loadu_si256(hay.as_ptr().add(i) as *const __m256i);
        let lt = _mm256_cmpgt_epi32(t, _mm256_xor_si256(v, bias));
        let mask = _mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32;
        if mask != 0xFF {
            // hay is sorted, so `lt` lanes form a low-bit run; the first
            // non-lt lane is the partition point.
            let p = i + mask.trailing_ones() as usize;
            return if hay[p] == target { Ok(p) } else { Err(p) };
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] >= target {
            return if hay[i] == target { Ok(i) } else { Err(i) };
        }
        i += 1;
    }
    Err(hay.len())
}

// ---------------------------------------------------------------------------
// block-max bound fold
// ---------------------------------------------------------------------------

/// One term's pass of the block-max bound fold: for every candidate `c`,
/// look up the BM25 upper bound of the block holding that candidate's
/// element (`elem_idx[c] / block_len`) and fold it into `ubs[c]` — assign
/// on the first term, IEEE f32 add after. Folding term-by-term keeps each
/// candidate's per-term addition order identical to the scalar
/// candidate-by-candidate loop, so bounds are bit-exact either way.
pub fn fold_term_bounds(
    ubs: &mut [f32],
    elem_idx: &[u32],
    block_len: usize,
    block_ubs: &[f32],
    first_term: bool,
) {
    assert_eq!(ubs.len(), elem_idx.len());
    let path = active_path();
    note_dispatch(K_FOLD, path);
    fold_term_bounds_with(ubs, elem_idx, block_len, block_ubs, first_term, path)
}

fn fold_term_bounds_with(
    ubs: &mut [f32],
    elem_idx: &[u32],
    block_len: usize,
    block_ubs: &[f32],
    first_term: bool,
    path: KernelPath,
) {
    let mut i = 0usize;
    #[cfg(target_arch = "x86_64")]
    if path == KernelPath::Avx2 && block_len.is_power_of_two() && elem_idx.len() >= 8 {
        // SAFETY: AVX2 presence is the dispatch precondition; every
        // gathered index is a valid block number for this term's list.
        unsafe {
            i = fold_term_bounds_avx2(
                ubs,
                elem_idx,
                block_len.trailing_zeros(),
                block_ubs,
                first_term,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = path;
    for c in i..elem_idx.len() {
        let u = block_ubs[elem_idx[c] as usize / block_len];
        ubs[c] = if first_term { u } else { ubs[c] + u };
    }
}

/// Vector body of the fold (power-of-two `block_len` only: the divide
/// becomes a logical shift). Returns how many candidates were handled;
/// the scalar tail finishes the rest.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fold_term_bounds_avx2(
    ubs: &mut [f32],
    elem_idx: &[u32],
    shift: u32,
    block_ubs: &[f32],
    first_term: bool,
) -> usize {
    use std::arch::x86_64::*;
    let count = _mm_cvtsi32_si128(shift as i32);
    let mut i = 0usize;
    while i + 8 <= elem_idx.len() {
        let idx = _mm256_loadu_si256(elem_idx.as_ptr().add(i) as *const __m256i);
        let blk = _mm256_srl_epi32(idx, count);
        let u = _mm256_i32gather_ps::<4>(block_ubs.as_ptr(), blk);
        let dst = ubs.as_mut_ptr().add(i);
        let v = if first_term {
            u
        } else {
            _mm256_add_ps(_mm256_loadu_ps(dst), u)
        };
        _mm256_storeu_ps(dst, v);
        i += 8;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::bitio::BitWriter;
    use griffin_codec::pfordelta::PforBlock;
    use griffin_codec::{Codec, EfBlock};

    /// SplitMix64 — deterministic stream, no external rand.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn both_paths() -> Vec<KernelPath> {
        let mut p = vec![KernelPath::Scalar];
        if avx2_available() {
            p.push(KernelPath::Avx2);
        }
        p
    }

    #[test]
    fn unpack_matches_reference_for_every_width() {
        let mut rng = 7u64;
        for b in 0u32..=32 {
            for count in [0usize, 1, 5, 7, 8, 9, 16, 31, 100, 128] {
                let mask = if b == 32 { u32::MAX } else { (1u32 << b) - 1 };
                let values: Vec<u32> = (0..count)
                    .map(|_| splitmix(&mut rng) as u32 & mask)
                    .collect();
                let mut wtr = BitWriter::new();
                for &v in &values {
                    wtr.write_bits(v, b);
                }
                let words = wtr.finish();
                for path in both_paths() {
                    let mut out = vec![42u32]; // pre-existing content survives
                    unpack_bits_into(&words, count, b, &mut out, path);
                    assert_eq!(out[0], 42);
                    assert_eq!(&out[1..], &values[..], "b={b} count={count} {path:?}");
                }
            }
        }
    }

    #[test]
    fn prefix_sum_paths_agree_including_wraparound() {
        let mut rng = 11u64;
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 100, 128, 1000] {
            for base in [0u32, 1, u32::MAX - 3] {
                let gaps: Vec<u32> = (0..n)
                    .map(|i| {
                        if i % 17 == 0 {
                            u32::MAX - (splitmix(&mut rng) as u32 % 5)
                        } else {
                            splitmix(&mut rng) as u32 % 1000
                        }
                    })
                    .collect();
                let mut expect = gaps.clone();
                dgap::prefix_sum_in_place(&mut expect, base);
                for path in both_paths() {
                    let mut got = gaps.clone();
                    prefix_sum(&mut got, base, path);
                    assert_eq!(got, expect, "n={n} base={base} {path:?}");
                }
            }
        }
    }

    #[test]
    fn pfor_decode_paths_match_codec_reference() {
        let mut rng = 13u64;
        for n in [1usize, 3, 8, 100, 128, 200] {
            // Mix small gaps with huge outliers to force exceptions.
            let gaps: Vec<u32> = (0..n)
                .map(|i| {
                    if i % 9 == 3 {
                        1 << 30
                    } else {
                        1 + splitmix(&mut rng) as u32 % 60
                    }
                })
                .collect();
            let blk = PforBlock::encode(&gaps);
            let mut words = Vec::new();
            blk.to_words(&mut words);
            let parsed = PforBlockRef::parse(&words).unwrap();
            for base in [0u32, 1000] {
                let mut expect = Vec::new();
                Codec::PforDelta
                    .decode_block(&words, base, &mut expect)
                    .unwrap();
                for path in both_paths() {
                    let mut got = Vec::new();
                    decode_pfor_with(&parsed, base, &mut got, path).unwrap();
                    assert_eq!(got, expect, "n={n} base={base} {path:?}");
                }
            }
        }
    }

    #[test]
    fn ef_decode_paths_match_codec_reference() {
        let mut rng = 17u64;
        for n in [1usize, 2, 8, 100, 128, 300] {
            let mut cur = 0u64;
            let rel: Vec<u32> = (0..n)
                .map(|_| {
                    cur += 1 + splitmix(&mut rng) % 700;
                    cur as u32
                })
                .collect();
            let blk = EfBlock::encode(&rel);
            let mut words = Vec::new();
            blk.to_words(&mut words);
            let parsed = EfBlockRef::parse(&words).unwrap();
            for base in [0u32, 77] {
                let mut expect = Vec::new();
                Codec::EliasFano
                    .decode_block(&words, base, &mut expect)
                    .unwrap();
                for path in both_paths() {
                    let mut got = Vec::new();
                    decode_ef_with(&parsed, base, &mut got, path).unwrap();
                    assert_eq!(got, expect, "n={n} base={base} {path:?}");
                }
            }
        }
    }

    #[test]
    fn block_search_paths_agree_on_result_and_probes() {
        let mut rng = 19u64;
        for n in [0usize, 1, 2, 7, 8, 9, 64, 127, 128] {
            let mut cur = 0u64;
            let hay: Vec<u32> = (0..n)
                .map(|_| {
                    cur += 1 + splitmix(&mut rng) % 9;
                    cur as u32
                })
                .collect();
            let mut targets: Vec<u32> = hay.clone(); // every hit
            targets.extend([0u32, 1, u32::MAX]); // edges
            for _ in 0..40 {
                targets.push(splitmix(&mut rng) as u32 % (cur as u32 + 10).max(10));
            }
            for &t in &targets {
                let mut p_scalar = 0u64;
                let scalar = find_in_sorted_block_with(&hay, t, &mut p_scalar, KernelPath::Scalar);
                if avx2_available() {
                    let mut p_simd = 0u64;
                    let simd = find_in_sorted_block_with(&hay, t, &mut p_simd, KernelPath::Avx2);
                    assert_eq!(simd, scalar, "n={n} t={t}");
                    assert_eq!(p_simd, p_scalar, "probe parity n={n} t={t}");
                }
            }
        }
    }

    #[test]
    fn bound_fold_paths_are_bit_exact() {
        let mut rng = 23u64;
        for block_len in [1usize, 64, 128, 100] {
            // 100: non-power-of-two → SIMD path must fall back internally.
            let nblocks = 50usize;
            let block_ubs: Vec<f32> = (0..nblocks)
                .map(|_| (splitmix(&mut rng) % 1000) as f32 / 64.0)
                .collect();
            for n in [0usize, 1, 8, 9, 100, 1000] {
                let elem_idx: Vec<u32> = (0..n)
                    .map(|_| (splitmix(&mut rng) as usize % (nblocks * block_len)) as u32)
                    .collect();
                for first in [true, false] {
                    let mut expect = vec![0.5f32; n];
                    fold_term_bounds_with(
                        &mut expect,
                        &elem_idx,
                        block_len,
                        &block_ubs,
                        first,
                        KernelPath::Scalar,
                    );
                    if avx2_available() {
                        let mut got = vec![0.5f32; n];
                        fold_term_bounds_with(
                            &mut got,
                            &elem_idx,
                            block_len,
                            &block_ubs,
                            first,
                            KernelPath::Avx2,
                        );
                        assert_eq!(
                            got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                            expect.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                            "block_len={block_len} n={n} first={first}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forced_mode_controls_dispatch() {
        set_forced(ForceMode::Scalar);
        assert_eq!(active_path(), KernelPath::Scalar);
        set_forced(ForceMode::Simd);
        if avx2_available() {
            assert_eq!(active_path(), KernelPath::Avx2);
        } else {
            assert_eq!(active_path(), KernelPath::Scalar);
        }
        set_forced(ForceMode::Auto);
    }

    #[test]
    fn dispatch_totals_grow_monotonically() {
        let before: u64 = dispatch_totals().iter().map(|(_, _, n)| n).sum();
        let hay: Vec<u32> = (0..128).map(|i| i * 3).collect();
        let mut probes = 0u64;
        let _ = find_in_sorted_block(&hay, 33, &mut probes);
        let after: u64 = dispatch_totals().iter().map(|(_, _, n)| n).sum();
        assert!(after > before);
        assert_eq!(dispatch_totals().len(), 8);
    }
}
