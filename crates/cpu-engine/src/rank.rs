//! BM25 similarity — re-exported from `griffin-index`.
//!
//! The type moved into the index crate so the builder can bake per-block
//! score upper bounds at construction time (block-max pruning); this
//! module keeps the historical `griffin_cpu::rank::Bm25` path alive for
//! downstream users (the GPU engine mirrors its operation order for
//! bit-exact hybrid scoring).

pub use griffin_index::Bm25;
