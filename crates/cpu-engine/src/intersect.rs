//! Pairwise list-intersection algorithms on the CPU (paper §2.1.2, §2.2).
//!
//! Three strategies, matching the paper's CPU discussion:
//!
//! * [`merge_intersect`] — linear two-pointer merge over decompressed
//!   lists; the right choice when lengths are comparable (ample spatial
//!   locality, predictable branches).
//! * [`skip_intersect`] — for each element of the short list, binary search
//!   the *skip pointers* of the compressed long list, decompress only the
//!   candidate block, and binary search inside it. When the ratio is large
//!   this skips most comparisons *and* most decompression.
//! * [`binary_intersect_decoded`] — plain binary search over a decompressed
//!   long list; the "CPU binary" baseline of Fig. 13.
//!
//! All functions produce [`Matches`]: the common docIDs plus, for each
//! match, the element's position in both inputs, so the engine can gather
//! term frequencies for scoring without re-searching.

use griffin_codec::BlockedList;
use griffin_index::CompressedPostingList;

use crate::cost::WorkCounters;
use crate::decode::decode_block;

/// The result of a pairwise intersection, with provenance indices.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Matches {
    /// Common docIDs, ascending.
    pub docids: Vec<u32>,
    /// For each match, its index in the first (short) input.
    pub a_idx: Vec<u32>,
    /// For each match, its index in the second (long) input — a global
    /// element index for compressed inputs.
    pub b_idx: Vec<u32>,
}

impl Matches {
    pub fn len(&self) -> usize {
        self.docids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docids.is_empty()
    }

    fn push(&mut self, docid: u32, a: usize, b: usize) {
        self.docids.push(docid);
        self.a_idx.push(a as u32);
        self.b_idx.push(b as u32);
    }
}

/// Linear merge intersection of two sorted, decompressed lists.
pub fn merge_intersect(a: &[u32], b: &[u32], w: &mut WorkCounters) -> Matches {
    let mut out = Matches::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        w.merge_steps += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i], i, j);
                i += 1;
                j += 1;
            }
        }
    }
    w.emitted += out.len() as u64;
    out
}

/// Counts probes of a manual binary search for `target` in
/// `hay[lo..hi)`; returns `Ok(pos)` on hit, `Err(insertion_pos)` on miss.
fn counted_binary_search(
    hay: &[u32],
    mut lo: usize,
    mut hi: usize,
    target: u32,
    probes: &mut u64,
) -> Result<usize, usize> {
    while lo < hi {
        *probes += 1;
        let mid = lo + (hi - lo) / 2;
        match hay[mid].cmp(&target) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Binary-search intersection over fully decompressed inputs ("CPU binary").
/// The search window's low bound advances monotonically since `a` is sorted.
pub fn binary_intersect_decoded(a: &[u32], b: &[u32], w: &mut WorkCounters) -> Matches {
    let mut out = Matches::default();
    let mut lo = 0usize;
    for (i, &v) in a.iter().enumerate() {
        match counted_binary_search(b, lo, b.len(), v, &mut w.probes) {
            Ok(pos) => {
                out.push(v, i, pos);
                lo = pos + 1;
            }
            Err(pos) => lo = pos,
        }
        if lo >= b.len() {
            break;
        }
    }
    w.emitted += out.len() as u64;
    out
}

/// Skip-pointer intersection: `short` (decompressed) against `long`
/// (compressed). Only candidate blocks of `long` are decompressed; a
/// one-block cache exploits the monotone access pattern. Returned `b_idx`
/// are global element indices into `long`.
pub fn skip_intersect(short: &[u32], long: &BlockedList, w: &mut WorkCounters) -> Matches {
    let mut out = Matches::default();
    if long.num_blocks() == 0 {
        return out;
    }
    let mut cached_block = usize::MAX;
    let mut block_buf: Vec<u32> = Vec::new();
    let mut skip_lo = 0usize; // blocks before this can't match (short sorted)

    for (i, &v) in short.iter().enumerate() {
        // Binary search the skip pointers for the first block whose
        // last_docid >= v.
        let mut lo = skip_lo;
        let mut hi = long.num_blocks();
        while lo < hi {
            w.skip_probes += 1;
            let mid = lo + (hi - lo) / 2;
            if long.skips[mid].last_docid < v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo >= long.num_blocks() {
            break; // v and everything after it is beyond the long list
        }
        skip_lo = lo;
        let skip = &long.skips[lo];
        if v < skip.first_docid {
            continue; // falls in the gap before this block
        }
        if cached_block != lo {
            block_buf.clear();
            decode_block(long, lo, &mut block_buf, w);
            cached_block = lo;
        }
        if let Ok(pos) = counted_binary_search(&block_buf, 0, block_buf.len(), v, &mut w.probes) {
            out.push(v, i, skip.elem_start as usize + pos);
        }
    }
    w.emitted += out.len() as u64;
    out
}

/// Gathers the term frequencies of `long`-side matches. `b_idx` must be
/// ascending (which [`skip_intersect`]/[`merge_intersect`] guarantee).
pub fn gather_tfs(list: &CompressedPostingList, b_idx: &[u32], w: &mut WorkCounters) -> Vec<u32> {
    let mut out = Vec::with_capacity(b_idx.len());
    let mut cached_block = usize::MAX;
    let mut tf_buf: Vec<u32> = Vec::new();
    for &gi in b_idx {
        let gi = gi as usize;
        // Block index from the element index: blocks are block_len-sized
        // except the last, so integer division is exact.
        let blk = gi / list.docs.block_len;
        if blk != cached_block {
            tf_buf.clear();
            list.decode_block_into_tfs_only(blk, &mut tf_buf);
            w.varint_elements += tf_buf.len() as u64;
            w.blocks_decoded += 1;
            cached_block = blk;
        }
        out.push(tf_buf[gi - blk * list.docs.block_len]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::{Codec, DEFAULT_BLOCK_LEN};
    use griffin_index::Posting;

    fn wc() -> WorkCounters {
        WorkCounters::default()
    }

    #[test]
    fn paper_example_intersection() {
        // ℓ(PPoPP) ∩ ℓ(Austria) ∩ ℓ(2018) from paper §2.1.2.
        let ppopp = vec![11u32, 15, 17, 38, 60];
        let austria = vec![3u32, 5, 8, 11, 13, 15, 17, 38, 46, 60, 65];
        let y2018 = vec![2u32, 4, 6, 11, 13, 14, 15, 19, 25, 33, 38, 60, 70];
        let mut w = wc();
        let m1 = merge_intersect(&ppopp, &austria, &mut w);
        assert_eq!(m1.docids, vec![11, 15, 17, 38, 60]);
        let m2 = merge_intersect(&m1.docids, &y2018, &mut w);
        assert_eq!(m2.docids, vec![11, 15, 38, 60]);
    }

    #[test]
    fn merge_indices_point_back() {
        let a = vec![1u32, 5, 9, 12];
        let b = vec![2u32, 5, 9, 13];
        let m = merge_intersect(&a, &b, &mut wc());
        assert_eq!(m.docids, vec![5, 9]);
        assert_eq!(m.a_idx, vec![1, 2]);
        assert_eq!(m.b_idx, vec![1, 2]);
    }

    #[test]
    fn merge_counts_steps() {
        let a = vec![1u32, 3, 5];
        let b = vec![2u32, 4, 6];
        let mut w = wc();
        merge_intersect(&a, &b, &mut w);
        assert!(w.merge_steps >= 5, "steps = {}", w.merge_steps);
    }

    #[test]
    fn binary_matches_merge() {
        let a: Vec<u32> = (0..100).map(|i| i * 7).collect();
        let b: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let m1 = merge_intersect(&a, &b, &mut wc());
        let m2 = binary_intersect_decoded(&a, &b, &mut wc());
        assert_eq!(m1.docids, m2.docids);
        assert_eq!(m1.b_idx, m2.b_idx);
    }

    #[test]
    fn skip_intersect_matches_merge_and_skips_blocks() {
        let short: Vec<u32> = (0..50u32).map(|i| i * 4001 + 7).collect();
        let long: Vec<u32> = (0..100_000u32).map(|i| i * 2 + 1).collect();
        let compressed = BlockedList::compress(&long, Codec::EliasFano, DEFAULT_BLOCK_LEN);

        let mut w_merge = wc();
        let expect = merge_intersect(&short, &long, &mut w_merge);

        let mut w_skip = wc();
        let got = skip_intersect(&short, &compressed, &mut w_skip);
        assert_eq!(got.docids, expect.docids);
        assert_eq!(got.b_idx, expect.b_idx);

        // The whole point: far fewer blocks touched than exist.
        assert!(
            w_skip.blocks_decoded < compressed.num_blocks() as u64 / 4,
            "decoded {} of {} blocks",
            w_skip.blocks_decoded,
            compressed.num_blocks()
        );
    }

    #[test]
    fn skip_intersect_handles_gaps_and_overruns() {
        // Long list with docid gaps between blocks; short list probing the
        // gaps and beyond the end.
        let long: Vec<u32> = (0..300u32).map(|i| i * 10).collect();
        let compressed = BlockedList::compress(&long, Codec::PforDelta, 128);
        let short = vec![5u32, 15, 1275, 2990, 5000, 6000];
        let m = skip_intersect(&short, &compressed, &mut wc());
        assert_eq!(m.docids, vec![2990]);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u32> = vec![];
        let some = vec![1u32, 2];
        assert!(merge_intersect(&empty, &some, &mut wc()).is_empty());
        assert!(binary_intersect_decoded(&empty, &some, &mut wc()).is_empty());
        let list = BlockedList::compress(&some, Codec::EliasFano, 128);
        assert!(skip_intersect(&empty, &list, &mut wc()).is_empty());
    }

    #[test]
    fn gather_tfs_aligns_with_matches() {
        let postings: Vec<Posting> = (0..400u32)
            .map(|i| Posting {
                docid: i * 3,
                tf: i % 7 + 1,
            })
            .collect();
        let list = CompressedPostingList::compress(&postings, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let b_idx = vec![0u32, 127, 128, 399];
        let tfs = gather_tfs(&list, &b_idx, &mut wc());
        assert_eq!(
            tfs,
            vec![
                postings[0].tf,
                postings[127].tf,
                postings[128].tf,
                postings[399].tf
            ]
        );
    }
}
