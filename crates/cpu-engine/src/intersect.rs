//! Pairwise list-intersection algorithms on the CPU (paper §2.1.2, §2.2).
//!
//! Three strategies, matching the paper's CPU discussion:
//!
//! * [`merge_intersect`] — linear two-pointer merge over decompressed
//!   lists; the right choice when lengths are comparable (ample spatial
//!   locality, predictable branches).
//! * [`skip_intersect`] — for each element of the short list, binary search
//!   the *skip pointers* of the compressed long list, decompress only the
//!   candidate block, and binary search inside it. When the ratio is large
//!   this skips most comparisons *and* most decompression.
//! * [`binary_intersect_decoded`] — plain binary search over a decompressed
//!   long list; the "CPU binary" baseline of Fig. 13.
//!
//! All functions produce [`Matches`]: the common docIDs plus, for each
//! match, the element's position in both inputs, so the engine can gather
//! term frequencies for scoring without re-searching.

use griffin_codec::BlockedList;
use griffin_index::CompressedPostingList;

use crate::cost::WorkCounters;
use crate::decode::decode_block;

/// The result of a pairwise intersection, with provenance indices.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Matches {
    /// Common docIDs, ascending.
    pub docids: Vec<u32>,
    /// For each match, its index in the first (short) input.
    pub a_idx: Vec<u32>,
    /// For each match, its index in the second (long) input — a global
    /// element index for compressed inputs.
    pub b_idx: Vec<u32>,
}

impl Matches {
    pub fn len(&self) -> usize {
        self.docids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docids.is_empty()
    }

    fn push(&mut self, docid: u32, a: usize, b: usize) {
        self.docids.push(docid);
        self.a_idx.push(a as u32);
        self.b_idx.push(b as u32);
    }
}

/// Linear merge intersection of two sorted, decompressed lists.
pub fn merge_intersect(a: &[u32], b: &[u32], w: &mut WorkCounters) -> Matches {
    let mut out = Matches::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        w.merge_steps += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i], i, j);
                i += 1;
                j += 1;
            }
        }
    }
    w.emitted += out.len() as u64;
    out
}

/// Counts probes of a manual binary search for `target` in
/// `hay[lo..hi)`; returns `Ok(pos)` on hit, `Err(insertion_pos)` on miss.
fn counted_binary_search(
    hay: &[u32],
    mut lo: usize,
    mut hi: usize,
    target: u32,
    probes: &mut u64,
) -> Result<usize, usize> {
    while lo < hi {
        *probes += 1;
        let mid = lo + (hi - lo) / 2;
        match hay[mid].cmp(&target) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Binary-search intersection over fully decompressed inputs ("CPU binary").
/// The search window's low bound advances monotonically since `a` is sorted.
pub fn binary_intersect_decoded(a: &[u32], b: &[u32], w: &mut WorkCounters) -> Matches {
    let mut out = Matches::default();
    let mut lo = 0usize;
    for (i, &v) in a.iter().enumerate() {
        match counted_binary_search(b, lo, b.len(), v, &mut w.probes) {
            Ok(pos) => {
                out.push(v, i, pos);
                lo = pos + 1;
            }
            Err(pos) => lo = pos,
        }
        if lo >= b.len() {
            break;
        }
    }
    w.emitted += out.len() as u64;
    out
}

/// Reusable per-query decode scratch: the candidate-block buffer and the
/// tf-decode buffer that [`skip_intersect`]/[`gather_tfs`] would otherwise
/// allocate fresh on every pairwise operation. The hybrid engine keeps one
/// per query and threads it through the `_with` entry points; buffers are
/// cleared (not shrunk) between operations, so the high-water capacity is
/// paid once per query instead of once per op.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Decoded docids of the most recent candidate block.
    pub block_buf: Vec<u32>,
    /// Decoded term frequencies of the most recent tf block.
    pub tf_buf: Vec<u32>,
}

/// Probes a binary-search halving loop would spend on an `n`-wide window:
/// `ceil(log2(n + 1))`. Used only to report how much galloping saved.
fn binary_probe_estimate(n: u64) -> u64 {
    (u64::BITS - n.leading_zeros()) as u64
}

/// Galloping (exponential-then-binary) search over `skips[start..hi_block)`
/// for the first block whose `last_docid >= v`; returns `hi_block` when no
/// such block exists in the range.
///
/// Because the short list is sorted, consecutive targets land in the same
/// or a nearby block, so the search probes `start` first and then doubles
/// its stride — O(log distance) instead of O(log window). Probes are
/// charged to `skip_probes` exactly like the plain binary search they
/// replace; the probes *avoided* relative to binary-searching the whole
/// window accumulate in `gallop_saved` (informational, not priced).
fn gallop_skip_search(
    skips: &[griffin_codec::SkipEntry],
    start: usize,
    hi_block: usize,
    v: u32,
    w: &mut WorkCounters,
) -> usize {
    debug_assert!(start < hi_block && hi_block <= skips.len());
    let window = (hi_block - start) as u64;
    let mut probes = 1u64;
    if skips[start].last_docid >= v {
        w.skip_probes += probes;
        if crate::cost::info_counters_enabled() {
            w.gallop_saved += binary_probe_estimate(window).saturating_sub(probes);
        }
        return start;
    }
    // skips[start] falls short: gallop forward with doubling strides until
    // a pointer at or past v brackets the answer.
    let mut step = 1usize;
    let mut lo = start + 1; // smallest index not yet known to be < v
    let mut hi = hi_block;
    loop {
        let idx = start + step;
        if idx >= hi_block {
            break;
        }
        probes += 1;
        if skips[idx].last_docid >= v {
            hi = idx;
            break;
        }
        lo = idx + 1;
        step *= 2;
    }
    while lo < hi {
        probes += 1;
        let mid = lo + (hi - lo) / 2;
        if skips[mid].last_docid < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    w.skip_probes += probes;
    if crate::cost::info_counters_enabled() {
        w.gallop_saved += binary_probe_estimate(window).saturating_sub(probes);
    }
    lo
}

/// Skip-pointer intersection: `short` (decompressed) against `long`
/// (compressed). Only candidate blocks of `long` are decompressed; a
/// one-block cache exploits the monotone access pattern. Returned `b_idx`
/// are global element indices into `long`.
pub fn skip_intersect(short: &[u32], long: &BlockedList, w: &mut WorkCounters) -> Matches {
    skip_intersect_range(short, long, 0, long.num_blocks(), w)
}

/// [`skip_intersect`] restricted to blocks `[lo_block, hi_block)` of the
/// long list — the CPU lane of a co-executed split. `b_idx` stay *global*
/// element indices, so partial results from disjoint ranges concatenate
/// into exactly what the unrestricted call would return.
pub fn skip_intersect_range(
    short: &[u32],
    long: &BlockedList,
    lo_block: usize,
    hi_block: usize,
    w: &mut WorkCounters,
) -> Matches {
    let mut scratch = QueryScratch::default();
    skip_intersect_range_with(short, long, lo_block, hi_block, w, &mut scratch)
}

/// [`skip_intersect_range`] with a caller-provided decode scratch.
pub fn skip_intersect_range_with(
    short: &[u32],
    long: &BlockedList,
    lo_block: usize,
    hi_block: usize,
    w: &mut WorkCounters,
    scratch: &mut QueryScratch,
) -> Matches {
    let mut out = Matches::default();
    let hi_block = hi_block.min(long.num_blocks());
    if lo_block >= hi_block {
        return out;
    }
    let mut cached_block = usize::MAX;
    let block_buf = &mut scratch.block_buf;
    let mut skip_lo = lo_block; // blocks before this can't match (short sorted)

    for (i, &v) in short.iter().enumerate() {
        let lo = gallop_skip_search(&long.skips, skip_lo, hi_block, v, w);
        if lo >= hi_block {
            break; // v and everything after it is beyond the range
        }
        skip_lo = lo;
        let skip = &long.skips[lo];
        if v < skip.first_docid {
            continue; // falls in the gap before this block
        }
        if cached_block != lo {
            block_buf.clear();
            decode_block(long, lo, block_buf, w);
            cached_block = lo;
        }
        if let Ok(pos) = crate::simd::find_in_sorted_block(block_buf, v, &mut w.probes) {
            out.push(v, i, skip.elem_start as usize + pos);
        }
    }
    w.emitted += out.len() as u64;
    out
}

/// [`skip_intersect_range_with`] against a *host-cached decoded copy* of
/// the long list: identical galloping skip search and in-block binary
/// probes, but candidate "blocks" are slices of `decoded` instead of
/// being decompressed on demand.
///
/// `decoded` must be the full decode of `long` (what
/// [`crate::decode::decode_list`] returns). The probe sequence mirrors
/// the decoding variant exactly — same `skip_probes`, same in-block
/// `probes`, same `emitted` — and only the per-block decode charges
/// (`blocks_decoded`, `bytes_touched`, codec element counts) are
/// omitted, so the result is bit-identical and the modelled time is
/// provably never higher.
pub fn skip_intersect_range_cached(
    short: &[u32],
    long: &BlockedList,
    decoded: &[u32],
    lo_block: usize,
    hi_block: usize,
    w: &mut WorkCounters,
) -> Matches {
    let mut out = Matches::default();
    let hi_block = hi_block.min(long.num_blocks());
    if lo_block >= hi_block {
        return out;
    }
    debug_assert_eq!(decoded.len(), long.len(), "decoded copy must be complete");
    let mut skip_lo = lo_block; // blocks before this can't match (short sorted)

    for (i, &v) in short.iter().enumerate() {
        let lo = gallop_skip_search(&long.skips, skip_lo, hi_block, v, w);
        if lo >= hi_block {
            break; // v and everything after it is beyond the range
        }
        skip_lo = lo;
        let skip = &long.skips[lo];
        if v < skip.first_docid {
            continue; // falls in the gap before this block
        }
        let start = skip.elem_start as usize;
        let block = &decoded[start..start + skip.count as usize];
        if let Ok(pos) = crate::simd::find_in_sorted_block(block, v, &mut w.probes) {
            out.push(v, i, start + pos);
        }
    }
    w.emitted += out.len() as u64;
    out
}

/// Gathers the term frequencies of `long`-side matches. `b_idx` must be
/// ascending (which [`skip_intersect`]/[`merge_intersect`] guarantee).
pub fn gather_tfs(list: &CompressedPostingList, b_idx: &[u32], w: &mut WorkCounters) -> Vec<u32> {
    let mut scratch = QueryScratch::default();
    gather_tfs_with(list, b_idx, w, &mut scratch)
}

/// [`gather_tfs`] with a caller-provided decode scratch.
pub fn gather_tfs_with(
    list: &CompressedPostingList,
    b_idx: &[u32],
    w: &mut WorkCounters,
    scratch: &mut QueryScratch,
) -> Vec<u32> {
    let mut out = Vec::with_capacity(b_idx.len());
    let mut cached_block = usize::MAX;
    let tf_buf = &mut scratch.tf_buf;
    for &gi in b_idx {
        let gi = gi as usize;
        // Block index from the element index: blocks are block_len-sized
        // except the last, so integer division is exact.
        let blk = gi / list.docs.block_len;
        if blk != cached_block {
            tf_buf.clear();
            list.decode_block_into_tfs_only(blk, tf_buf);
            w.varint_elements += tf_buf.len() as u64;
            w.blocks_decoded += 1;
            cached_block = blk;
        }
        out.push(tf_buf[gi - blk * list.docs.block_len]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::{Codec, DEFAULT_BLOCK_LEN};
    use griffin_index::Posting;

    fn wc() -> WorkCounters {
        WorkCounters::default()
    }

    #[test]
    fn paper_example_intersection() {
        // ℓ(PPoPP) ∩ ℓ(Austria) ∩ ℓ(2018) from paper §2.1.2.
        let ppopp = vec![11u32, 15, 17, 38, 60];
        let austria = vec![3u32, 5, 8, 11, 13, 15, 17, 38, 46, 60, 65];
        let y2018 = vec![2u32, 4, 6, 11, 13, 14, 15, 19, 25, 33, 38, 60, 70];
        let mut w = wc();
        let m1 = merge_intersect(&ppopp, &austria, &mut w);
        assert_eq!(m1.docids, vec![11, 15, 17, 38, 60]);
        let m2 = merge_intersect(&m1.docids, &y2018, &mut w);
        assert_eq!(m2.docids, vec![11, 15, 38, 60]);
    }

    #[test]
    fn merge_indices_point_back() {
        let a = vec![1u32, 5, 9, 12];
        let b = vec![2u32, 5, 9, 13];
        let m = merge_intersect(&a, &b, &mut wc());
        assert_eq!(m.docids, vec![5, 9]);
        assert_eq!(m.a_idx, vec![1, 2]);
        assert_eq!(m.b_idx, vec![1, 2]);
    }

    #[test]
    fn merge_counts_steps() {
        let a = vec![1u32, 3, 5];
        let b = vec![2u32, 4, 6];
        let mut w = wc();
        merge_intersect(&a, &b, &mut w);
        assert!(w.merge_steps >= 5, "steps = {}", w.merge_steps);
    }

    #[test]
    fn binary_matches_merge() {
        let a: Vec<u32> = (0..100).map(|i| i * 7).collect();
        let b: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let m1 = merge_intersect(&a, &b, &mut wc());
        let m2 = binary_intersect_decoded(&a, &b, &mut wc());
        assert_eq!(m1.docids, m2.docids);
        assert_eq!(m1.b_idx, m2.b_idx);
    }

    #[test]
    fn skip_intersect_matches_merge_and_skips_blocks() {
        let short: Vec<u32> = (0..50u32).map(|i| i * 4001 + 7).collect();
        let long: Vec<u32> = (0..100_000u32).map(|i| i * 2 + 1).collect();
        let compressed = BlockedList::compress(&long, Codec::EliasFano, DEFAULT_BLOCK_LEN);

        let mut w_merge = wc();
        let expect = merge_intersect(&short, &long, &mut w_merge);

        let mut w_skip = wc();
        let got = skip_intersect(&short, &compressed, &mut w_skip);
        assert_eq!(got.docids, expect.docids);
        assert_eq!(got.b_idx, expect.b_idx);

        // The whole point: far fewer blocks touched than exist.
        assert!(
            w_skip.blocks_decoded < compressed.num_blocks() as u64 / 4,
            "decoded {} of {} blocks",
            w_skip.blocks_decoded,
            compressed.num_blocks()
        );
    }

    #[test]
    fn skip_intersect_handles_gaps_and_overruns() {
        // Long list with docid gaps between blocks; short list probing the
        // gaps and beyond the end.
        let long: Vec<u32> = (0..300u32).map(|i| i * 10).collect();
        let compressed = BlockedList::compress(&long, Codec::PforDelta, 128);
        let short = vec![5u32, 15, 1275, 2990, 5000, 6000];
        let m = skip_intersect(&short, &compressed, &mut wc());
        assert_eq!(m.docids, vec![2990]);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u32> = vec![];
        let some = vec![1u32, 2];
        assert!(merge_intersect(&empty, &some, &mut wc()).is_empty());
        assert!(binary_intersect_decoded(&empty, &some, &mut wc()).is_empty());
        let list = BlockedList::compress(&some, Codec::EliasFano, 128);
        assert!(skip_intersect(&empty, &list, &mut wc()).is_empty());
    }

    /// The pre-galloping skip search: a plain binary search over the full
    /// remaining skip window. Kept verbatim as the reference the galloping
    /// version must match element-for-element.
    fn reference_skip_intersect(
        short: &[u32],
        long: &BlockedList,
        w: &mut WorkCounters,
    ) -> Matches {
        let mut out = Matches::default();
        if long.num_blocks() == 0 {
            return out;
        }
        let mut cached_block = usize::MAX;
        let mut block_buf: Vec<u32> = Vec::new();
        let mut skip_lo = 0usize;
        for (i, &v) in short.iter().enumerate() {
            let mut lo = skip_lo;
            let mut hi = long.num_blocks();
            while lo < hi {
                w.skip_probes += 1;
                let mid = lo + (hi - lo) / 2;
                if long.skips[mid].last_docid < v {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo >= long.num_blocks() {
                break;
            }
            skip_lo = lo;
            let skip = &long.skips[lo];
            if v < skip.first_docid {
                continue;
            }
            if cached_block != lo {
                block_buf.clear();
                decode_block(long, lo, &mut block_buf, w);
                cached_block = lo;
            }
            if let Ok(pos) = counted_binary_search(&block_buf, 0, block_buf.len(), v, &mut w.probes)
            {
                out.push(v, i, skip.elem_start as usize + pos);
            }
        }
        w.emitted += out.len() as u64;
        out
    }

    /// SplitMix64 — deterministic pseudo-random stream for the property
    /// sweeps (no external rand dependency).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn random_sorted(rng: &mut u64, n: usize, max_gap: u64) -> Vec<u32> {
        let mut cur = 0u64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            cur += 1 + splitmix(rng) % max_gap;
            out.push(cur as u32);
        }
        out
    }

    #[test]
    fn galloping_search_is_bit_exact_with_binary_search() {
        let mut rng = 0x5eed_u64;
        for (codec, short_n, long_n, short_gap, long_gap) in [
            (Codec::EliasFano, 40usize, 50_000usize, 5_000u64, 3u64),
            (Codec::EliasFano, 2_000, 50_000, 60, 3),
            (Codec::PforDelta, 500, 20_000, 7, 7), // dense overlap, tiny strides
            (Codec::EliasFano, 1, 10_000, 1, 9),
            (Codec::PforDelta, 3_000, 3_000, 4, 4), // comparable lengths
        ] {
            let long = random_sorted(&mut rng, long_n, long_gap);
            let mut short = random_sorted(&mut rng, short_n, short_gap);
            // Force some exact hits so the equal path is exercised too.
            for (k, s) in short.iter_mut().enumerate() {
                if k % 3 == 0 {
                    *s = long[(splitmix(&mut rng) as usize) % long.len()];
                }
            }
            short.sort_unstable();
            short.dedup();
            let compressed = BlockedList::compress(&long, codec, DEFAULT_BLOCK_LEN);

            let mut w_ref = wc();
            let expect = reference_skip_intersect(&short, &compressed, &mut w_ref);
            let mut w_gallop = wc();
            let got = skip_intersect(&short, &compressed, &mut w_gallop);

            assert_eq!(got, expect, "codec {codec:?} short_n {short_n}");
            // Same candidate blocks decoded, same in-block probes.
            assert_eq!(w_gallop.blocks_decoded, w_ref.blocks_decoded);
            assert_eq!(w_gallop.probes, w_ref.probes);
        }
    }

    #[test]
    fn galloping_saves_probes_on_clustered_short_lists() {
        // A dense short list marches block-to-block: galloping finds each
        // next block in O(1)-ish probes where binary search pays the full
        // log(window) every time.
        let long: Vec<u32> = (0..200_000u32).map(|i| i * 2).collect();
        let short: Vec<u32> = (0..4_000u32).map(|i| i * 7).collect();
        let compressed = BlockedList::compress(&long, Codec::EliasFano, DEFAULT_BLOCK_LEN);

        let mut w_ref = wc();
        reference_skip_intersect(&short, &compressed, &mut w_ref);
        let mut w_gallop = wc();
        skip_intersect(&short, &compressed, &mut w_gallop);

        assert!(
            w_gallop.skip_probes < w_ref.skip_probes,
            "gallop {} vs binary {}",
            w_gallop.skip_probes,
            w_ref.skip_probes
        );
        assert!(w_gallop.gallop_saved > 0);
    }

    #[test]
    fn range_partitions_concatenate_to_the_full_result() {
        let mut rng = 0xc0ffee_u64;
        let long = random_sorted(&mut rng, 60_000, 5);
        let short = random_sorted(&mut rng, 900, 300);
        let compressed = BlockedList::compress(&long, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let nb = compressed.num_blocks();

        let full = skip_intersect(&short, &compressed, &mut wc());
        for split in [0usize, 1, nb / 3, nb / 2, nb - 1, nb] {
            // Partition the short list at the boundary docid, mirroring the
            // engine's split: GPU lane takes blocks [0, split), CPU lane
            // [split, nb).
            let boundary = if split < nb {
                compressed.skips[split].first_docid
            } else {
                u32::MAX
            };
            let cut = short.partition_point(|&v| v < boundary);
            let mut scratch = QueryScratch::default();
            let lo_part = skip_intersect_range_with(
                &short[..cut],
                &compressed,
                0,
                split,
                &mut wc(),
                &mut scratch,
            );
            let hi_part = skip_intersect_range_with(
                &short[cut..],
                &compressed,
                split,
                nb,
                &mut wc(),
                &mut scratch,
            );
            let mut docids = lo_part.docids.clone();
            docids.extend_from_slice(&hi_part.docids);
            let mut b_idx = lo_part.b_idx.clone();
            b_idx.extend_from_slice(&hi_part.b_idx);
            // a_idx from the high lane are relative to short[cut..].
            let mut a_idx = lo_part.a_idx.clone();
            a_idx.extend(hi_part.a_idx.iter().map(|&a| a + cut as u32));
            assert_eq!(docids, full.docids, "split at block {split}");
            assert_eq!(b_idx, full.b_idx, "split at block {split}");
            assert_eq!(a_idx, full.a_idx, "split at block {split}");
        }
    }

    #[test]
    fn cached_range_intersect_is_bit_exact_and_skips_decode() {
        let mut rng = 0xcafe_u64;
        let long = random_sorted(&mut rng, 60_000, 5);
        let short = random_sorted(&mut rng, 900, 300);
        for codec in [Codec::EliasFano, Codec::PforDelta] {
            let compressed = BlockedList::compress(&long, codec, DEFAULT_BLOCK_LEN);
            let nb = compressed.num_blocks();
            for (lo, hi) in [(0usize, nb), (0, nb / 2), (nb / 3, nb), (nb / 2, nb / 2)] {
                let mut w_dec = wc();
                let mut scratch = QueryScratch::default();
                let expect = skip_intersect_range_with(
                    &short,
                    &compressed,
                    lo,
                    hi,
                    &mut w_dec,
                    &mut scratch,
                );
                let mut w_cached = wc();
                let got =
                    skip_intersect_range_cached(&short, &compressed, &long, lo, hi, &mut w_cached);
                assert_eq!(got, expect, "codec {codec:?} range {lo}..{hi}");
                // Identical search work, zero decode work.
                assert_eq!(w_cached.skip_probes, w_dec.skip_probes);
                assert_eq!(w_cached.probes, w_dec.probes);
                assert_eq!(w_cached.emitted, w_dec.emitted);
                assert_eq!(w_cached.blocks_decoded, 0);
                assert_eq!(w_cached.bytes_touched, 0);
                assert_eq!(w_cached.pfor_elements + w_cached.ef_elements, 0);
            }
        }
    }

    #[test]
    fn gather_tfs_aligns_with_matches() {
        let postings: Vec<Posting> = (0..400u32)
            .map(|i| Posting {
                docid: i * 3,
                tf: i % 7 + 1,
            })
            .collect();
        let list = CompressedPostingList::compress(&postings, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let b_idx = vec![0u32, 127, 128, 399];
        let tfs = gather_tfs(&list, &b_idx, &mut wc());
        assert_eq!(
            tfs,
            vec![
                postings[0].tf,
                postings[127].tf,
                postings[128].tf,
                postings[399].tf
            ]
        );
    }
}
