//! Set-algebra kernels over scored intermediates — the CPU physical
//! operators behind the query-plan DAG's OR (union), NOT (difference),
//! AND-of-sets (intersection) and phrase (positional filter) nodes.
//!
//! All kernels are instrumented against the same [`WorkCounters`] the
//! conjunctive pipeline uses, so the cost model prices a plan's set
//! operators and its intersections in one currency.
//!
//! # Score semantics (the bit-exactness contract)
//!
//! * [`union`]: a docID present in both inputs scores `a + b` — one f32
//!   addition in argument order. The plan executor folds an OR's children
//!   left to right (`union(union(c0, c1), c2)`), so a document in every
//!   child accumulates `((s0 + s1) + s2)`, the same left-associated order
//!   the property-test reference mirrors.
//! * [`difference`]: survivors keep the left side's scores untouched.
//! * [`intersect_sets`]: survivors score `a + b` in argument order.
//! * [`phrase_filter`]: survivors keep their carried scores (a phrase is
//!   an AND whose extra positional predicate filters but never rescores).

use griffin_index::{InvertedIndex, TermId};

use crate::cost::WorkCounters;
use crate::engine::Intermediate;
use crate::intersect::{self, QueryScratch};

/// Union of two scored intermediates: every docID of either side, scores
/// added (left + right) where both sides contain the document.
pub fn union(a: &Intermediate, b: &Intermediate, w: &mut WorkCounters) -> Intermediate {
    let mut out = Intermediate::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        w.merge_steps += 1;
        match a.docids[i].cmp(&b.docids[j]) {
            std::cmp::Ordering::Less => {
                out.docids.push(a.docids[i]);
                out.scores.push(a.scores[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.docids.push(b.docids[j]);
                out.scores.push(b.scores[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.docids.push(a.docids[i]);
                out.scores.push(a.scores[i] + b.scores[j]);
                i += 1;
                j += 1;
            }
        }
    }
    w.merge_steps += (a.len() - i) as u64 + (b.len() - j) as u64;
    out.docids.extend_from_slice(&a.docids[i..]);
    out.scores.extend_from_slice(&a.scores[i..]);
    out.docids.extend_from_slice(&b.docids[j..]);
    out.scores.extend_from_slice(&b.scores[j..]);
    w.emitted += out.len() as u64;
    out
}

/// Difference `a \ b`: the left side's documents not present in the right
/// side, left scores carried unchanged (NOT filters, it never rescores).
pub fn difference(a: &Intermediate, b: &Intermediate, w: &mut WorkCounters) -> Intermediate {
    let mut out = Intermediate::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        w.merge_steps += 1;
        match a.docids[i].cmp(&b.docids[j]) {
            std::cmp::Ordering::Less => {
                out.docids.push(a.docids[i]);
                out.scores.push(a.scores[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    w.merge_steps += (a.len() - i) as u64;
    out.docids.extend_from_slice(&a.docids[i..]);
    out.scores.extend_from_slice(&a.scores[i..]);
    w.emitted += out.len() as u64;
    out
}

/// Intersection of two already-materialized scored sets (an AND whose
/// children are sub-plans rather than raw posting lists): common docIDs,
/// scores added (left + right).
pub fn intersect_sets(a: &Intermediate, b: &Intermediate, w: &mut WorkCounters) -> Intermediate {
    let mut out = Intermediate::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        w.merge_steps += 1;
        match a.docids[i].cmp(&b.docids[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.docids.push(a.docids[i]);
                out.scores.push(a.scores[i] + b.scores[j]);
                i += 1;
                j += 1;
            }
        }
    }
    w.emitted += out.len() as u64;
    out
}

/// Positional phrase filter: keeps the candidates of `inter` in which
/// `phrase_terms` occur at consecutive token positions, in the order
/// given (which must be the *original* phrase order, not the df-sorted
/// plan order used for scoring). Scores are carried unchanged.
///
/// Per term `j` the filter intersects the surviving candidates against
/// the term's posting list (skip-pointer search — charged like any other
/// intersection), decodes the matched postings' position runs (charged as
/// VByte work), and narrows each candidate's set of viable phrase-start
/// positions: `P ∩= (positions_j − j)`. A candidate missing a term, or
/// left with no viable start, is dropped — so the filter is also correct
/// on candidate sets that are not already the conjunction of the phrase
/// terms.
pub fn phrase_filter(
    index: &InvertedIndex,
    phrase_terms: &[TermId],
    inter: &Intermediate,
    w: &mut WorkCounters,
    scratch: &mut QueryScratch,
) -> Intermediate {
    if inter.is_empty() || phrase_terms.len() <= 1 {
        // A 1-term phrase is just that term: every candidate containing it
        // (all of them, when `inter` came from the phrase's AND) passes.
        return inter.clone();
    }
    let mut cand = inter.docids.clone();
    let mut scores = inter.scores.clone();
    // Per surviving candidate: the phrase-start positions still viable
    // after the terms processed so far.
    let mut starts: Vec<Vec<u32>> = Vec::new();
    let mut pos_buf: Vec<u32> = Vec::new();
    for (j, &t) in phrase_terms.iter().enumerate() {
        if cand.is_empty() {
            break;
        }
        let list = index.list(t);
        let m = intersect::skip_intersect_range_with(
            &cand,
            &list.docs,
            0,
            list.num_blocks(),
            w,
            scratch,
        );
        let bl = list.docs.block_len;
        let mut next_cand = Vec::with_capacity(m.len());
        let mut next_scores = Vec::with_capacity(m.len());
        let mut next_starts = Vec::with_capacity(m.len());
        for (k, &gi) in m.b_idx.iter().enumerate() {
            let ai = m.a_idx[k] as usize;
            let gi = gi as usize;
            pos_buf.clear();
            let varints = list.positions_into(gi / bl, gi % bl, &mut pos_buf);
            w.varint_elements += varints as u64;
            let keep: Vec<u32> = if j == 0 {
                pos_buf.clone()
            } else {
                // Sorted-merge intersection of the carried start set with
                // this term's positions shifted back to start coordinates.
                let prev = &starts[ai];
                let mut out = Vec::new();
                let (mut x, mut y) = (0usize, 0usize);
                while x < prev.len() && y < pos_buf.len() {
                    w.merge_steps += 1;
                    let Some(shifted) = pos_buf[y].checked_sub(j as u32) else {
                        y += 1; // position earlier than the term's offset
                        continue;
                    };
                    match prev[x].cmp(&shifted) {
                        std::cmp::Ordering::Less => x += 1,
                        std::cmp::Ordering::Greater => y += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(prev[x]);
                            x += 1;
                            y += 1;
                        }
                    }
                }
                out
            };
            if !keep.is_empty() {
                next_cand.push(m.docids[k]);
                next_scores.push(scores[ai]);
                next_starts.push(keep);
            }
        }
        cand = next_cand;
        scores = next_scores;
        starts = next_starts;
    }
    w.emitted += cand.len() as u64;
    Intermediate {
        docids: cand,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;
    use griffin_index::{IndexBuilder, InvertedIndex};

    fn wc() -> WorkCounters {
        WorkCounters::default()
    }

    fn inter(pairs: &[(u32, f32)]) -> Intermediate {
        Intermediate {
            docids: pairs.iter().map(|&(d, _)| d).collect(),
            scores: pairs.iter().map(|&(_, s)| s).collect(),
        }
    }

    #[test]
    fn union_adds_scores_on_overlap() {
        let a = inter(&[(1, 1.0), (3, 3.0), (5, 5.0)]);
        let b = inter(&[(2, 0.5), (3, 0.25), (9, 9.0)]);
        let u = union(&a, &b, &mut wc());
        assert_eq!(u.docids, vec![1, 2, 3, 5, 9]);
        assert_eq!(u.scores, vec![1.0, 0.5, 3.25, 5.0, 9.0]);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = inter(&[(4, 2.0), (7, 1.0)]);
        let e = Intermediate::default();
        assert_eq!(union(&a, &e, &mut wc()), a);
        assert_eq!(union(&e, &a, &mut wc()), a);
    }

    #[test]
    fn difference_keeps_left_scores() {
        let a = inter(&[(1, 1.0), (3, 3.0), (5, 5.0), (8, 8.0)]);
        let b = inter(&[(3, 99.0), (8, 99.0), (10, 99.0)]);
        let d = difference(&a, &b, &mut wc());
        assert_eq!(d.docids, vec![1, 5]);
        assert_eq!(d.scores, vec![1.0, 5.0]);
    }

    #[test]
    fn intersect_sets_adds_scores() {
        let a = inter(&[(1, 1.0), (3, 3.0), (5, 5.0)]);
        let b = inter(&[(3, 0.5), (5, 0.25), (7, 7.0)]);
        let m = intersect_sets(&a, &b, &mut wc());
        assert_eq!(m.docids, vec![3, 5]);
        assert_eq!(m.scores, vec![3.5, 5.25]);
    }

    #[test]
    fn kernels_charge_merge_work() {
        let a = inter(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let b = inter(&[(2, 1.0), (4, 4.0)]);
        let mut w = wc();
        union(&a, &b, &mut w);
        assert!(w.merge_steps >= 4, "steps = {}", w.merge_steps);
        assert_eq!(w.emitted, 4);
    }

    fn phrase_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(Codec::EliasFano);
        b.add_text("griffin unites cpu and gpu engines"); // 0: "cpu and gpu" ✓
        b.add_text("gpu and cpu is the reverse order"); // 1: ✗
        b.add_text("a cpu and gpu and cpu and gpu pipeline"); // 2: ✓ twice
        b.add_text("cpu gpu adjacency and nothing else"); // 3: ✗ ("and" not adjacent)
        b.build()
    }

    fn scored_candidates(idx: &InvertedIndex, terms: &[TermId]) -> Intermediate {
        // All docs containing every term, unit scores (scores are opaque
        // to the filter).
        let all: Vec<u32> = (0..idx.num_docs()).collect();
        let docids: Vec<u32> = all
            .into_iter()
            .filter(|&d| {
                terms.iter().all(|&t| {
                    let (ids, _) = idx.list(t).decompress();
                    ids.contains(&d)
                })
            })
            .collect();
        let scores = vec![1.0f32; docids.len()];
        Intermediate { docids, scores }
    }

    #[test]
    fn phrase_filter_requires_adjacency_in_order() {
        let idx = phrase_index();
        let terms: Vec<TermId> = ["cpu", "and", "gpu"]
            .iter()
            .map(|t| idx.lookup(t).unwrap())
            .collect();
        let cands = scored_candidates(&idx, &terms);
        assert_eq!(cands.docids, vec![0, 1, 2, 3]);
        let mut scratch = QueryScratch::default();
        let out = phrase_filter(&idx, &terms, &cands, &mut wc(), &mut scratch);
        assert_eq!(out.docids, vec![0, 2]);
        assert_eq!(out.scores, vec![1.0, 1.0]);
    }

    #[test]
    fn phrase_filter_drops_candidates_missing_a_term() {
        let idx = phrase_index();
        let terms: Vec<TermId> = ["cpu", "and"]
            .iter()
            .map(|t| idx.lookup(t).unwrap())
            .collect();
        // Hand the filter every document, including ones without "and".
        let cands = inter(&[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)]);
        let mut scratch = QueryScratch::default();
        let out = phrase_filter(&idx, &terms, &cands, &mut wc(), &mut scratch);
        assert_eq!(out.docids, vec![0, 2]); // 1 has "cpu" after "and"; 3 not adjacent
    }

    #[test]
    fn synthetic_phrase_equals_intersection() {
        // from_docid_lists places list i's postings at position i, so a
        // phrase over consecutive synthetic terms is their intersection.
        let lists = vec![
            (0..500u32).map(|i| i * 3).collect::<Vec<_>>(),
            (0..700u32).map(|i| i * 2).collect::<Vec<_>>(),
        ];
        let idx = InvertedIndex::from_docid_lists(&lists, 2000, Codec::EliasFano, 128);
        let t0 = idx.lookup("t0").unwrap();
        let t1 = idx.lookup("t1").unwrap();
        let expect: Vec<u32> = lists[0]
            .iter()
            .copied()
            .filter(|d| lists[1].contains(d))
            .collect();
        let cands = Intermediate {
            docids: expect.clone(),
            scores: vec![0.5; expect.len()],
        };
        let mut scratch = QueryScratch::default();
        let out = phrase_filter(&idx, &[t0, t1], &cands, &mut wc(), &mut scratch);
        assert_eq!(out.docids, expect);
    }

    #[test]
    fn single_term_phrase_is_a_no_op() {
        let idx = phrase_index();
        let t = idx.lookup("cpu").unwrap();
        let cands = inter(&[(0, 1.0), (3, 2.0)]);
        let mut scratch = QueryScratch::default();
        let out = phrase_filter(&idx, &[t], &cands, &mut wc(), &mut scratch);
        assert_eq!(out, cands);
    }

    #[test]
    fn phrase_positions_charge_varint_work() {
        let idx = phrase_index();
        let terms: Vec<TermId> = ["cpu", "and", "gpu"]
            .iter()
            .map(|t| idx.lookup(t).unwrap())
            .collect();
        let cands = scored_candidates(&idx, &terms);
        let mut w = wc();
        let mut scratch = QueryScratch::default();
        phrase_filter(&idx, &terms, &cands, &mut w, &mut scratch);
        assert!(w.varint_elements > 0, "position decode must be charged");
    }
}
