//! The analytic CPU cost model.
//!
//! The real implementations run and count their actual work (elements
//! decoded, blocks touched, probes, merge steps); this module converts the
//! counters into virtual nanoseconds for a single core of the paper's
//! 4-core Intel Xeon E5-2609v2 @ 2.5 GHz. Using *measured work × calibrated
//! per-unit cost* (rather than closed-form formulas) means data-dependent
//! effects — how many blocks a skip search actually avoided, how many
//! exceptions a block really had — flow into the timing automatically.

use griffin_gpu_sim::VirtualNanos;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide switch for *informational* work bookkeeping — counters
/// that explain behaviour (e.g. [`WorkCounters::gallop_saved`]) but are
/// deliberately not priced by the cost model. Priced counters are never
/// gated: virtual time must not depend on whether telemetry is watching.
/// Defaults to on; wall-clock microbenches turn it off so the measured
/// kernels carry zero bookkeeping overhead.
static INFO_COUNTERS: AtomicBool = AtomicBool::new(true);

/// Enables/disables informational (unpriced) counter bookkeeping.
pub fn set_info_counters(enabled: bool) {
    INFO_COUNTERS.store(enabled, Ordering::Relaxed);
}

/// Whether informational counter bookkeeping is currently enabled.
#[inline]
pub fn info_counters_enabled() -> bool {
    INFO_COUNTERS.load(Ordering::Relaxed)
}

/// Per-unit cycle costs, calibrated to the paper's measured CPU behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Core clock (Xeon E5-2609v2: 2.5 GHz).
    pub clock_hz: f64,
    /// Decode cost per regular PforDelta element (bit-unpack + prefix sum).
    pub pfor_cycles_per_elem: f64,
    /// Extra cost per exception patched (chain walk, data-dependent load).
    pub pfor_cycles_per_exception: f64,
    /// Decode cost per Elias–Fano element (unary scan + low-bit fetch).
    pub ef_cycles_per_elem: f64,
    /// Decode cost per VByte element.
    pub varint_cycles_per_elem: f64,
    /// Fixed overhead per block touched (header parse, bounds, cache line).
    pub cycles_per_block: f64,
    /// Cost per merge step (compare + advance; mostly predictable branches
    /// with excellent spatial locality).
    pub merge_cycles_per_step: f64,
    /// Cost per binary-search probe (compare + ~50% mispredicted branch +
    /// likely cache miss on the random access).
    pub probe_cycles: f64,
    /// Cost per skip-pointer probe (binary search over the skip array,
    /// which is small and usually cached).
    pub skip_probe_cycles: f64,
    /// Cost per BM25 term-contribution evaluation.
    pub score_cycles_per_elem: f64,
    /// Cost per element inspected during top-k selection.
    pub topk_cycles_per_elem: f64,
    /// Cost per result element materialized (copy out).
    pub emit_cycles_per_elem: f64,
    /// Sustained single-core memory bandwidth (bytes/s); the streaming
    /// floor for large scans.
    pub mem_bandwidth_bytes_per_sec: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            clock_hz: 2.5e9,
            pfor_cycles_per_elem: 20.0,
            pfor_cycles_per_exception: 14.0,
            ef_cycles_per_elem: 24.0,
            varint_cycles_per_elem: 14.0,
            cycles_per_block: 60.0,
            // ~50% mispredicted compare branches on in-order-ish cores
            // make the merge loop expensive per step.
            merge_cycles_per_step: 18.0,
            probe_cycles: 18.0,
            skip_probe_cycles: 10.0,
            score_cycles_per_elem: 24.0,
            topk_cycles_per_elem: 4.0,
            emit_cycles_per_elem: 2.0,
            mem_bandwidth_bytes_per_sec: 12.0e9,
        }
    }
}

/// Work actually performed by the instrumented CPU implementations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkCounters {
    /// PforDelta elements decoded (regular slots).
    pub pfor_elements: u64,
    /// PforDelta exceptions patched.
    pub pfor_exceptions: u64,
    /// Elias–Fano elements decoded.
    pub ef_elements: u64,
    /// VByte elements decoded.
    pub varint_elements: u64,
    /// Compressed blocks touched (decoded or header-parsed).
    pub blocks_decoded: u64,
    /// Merge-loop steps (pointer advances).
    pub merge_steps: u64,
    /// In-data binary-search probes.
    pub probes: u64,
    /// Skip-pointer probes.
    pub skip_probes: u64,
    /// Skip-pointer probes *avoided* by galloping search relative to a
    /// full-window binary search (informational — galloping's actual
    /// probes are already charged via `skip_probes`, so this counter is
    /// deliberately not priced by the cost model).
    pub gallop_saved: u64,
    /// BM25 contributions evaluated.
    pub scored: u64,
    /// Elements inspected by top-k selection.
    pub topk_scanned: u64,
    /// Result elements materialized.
    pub emitted: u64,
    /// Bytes streamed through memory (compressed input + decoded output).
    pub bytes_touched: u64,
}

impl WorkCounters {
    /// Every counter with its field name, in declaration order — the
    /// stable enumeration telemetry uses to fold CPU work into a
    /// metrics registry without this crate knowing about telemetry.
    pub fn named(&self) -> [(&'static str, u64); 13] {
        [
            ("pfor_elements", self.pfor_elements),
            ("pfor_exceptions", self.pfor_exceptions),
            ("ef_elements", self.ef_elements),
            ("varint_elements", self.varint_elements),
            ("blocks_decoded", self.blocks_decoded),
            ("merge_steps", self.merge_steps),
            ("probes", self.probes),
            ("skip_probes", self.skip_probes),
            ("gallop_saved", self.gallop_saved),
            ("scored", self.scored),
            ("topk_scanned", self.topk_scanned),
            ("emitted", self.emitted),
            ("bytes_touched", self.bytes_touched),
        ]
    }

    pub fn add(&mut self, o: &WorkCounters) {
        self.pfor_elements += o.pfor_elements;
        self.pfor_exceptions += o.pfor_exceptions;
        self.ef_elements += o.ef_elements;
        self.varint_elements += o.varint_elements;
        self.blocks_decoded += o.blocks_decoded;
        self.merge_steps += o.merge_steps;
        self.probes += o.probes;
        self.skip_probes += o.skip_probes;
        self.gallop_saved += o.gallop_saved;
        self.scored += o.scored;
        self.topk_scanned += o.topk_scanned;
        self.emitted += o.emitted;
        self.bytes_touched += o.bytes_touched;
    }
}

/// Converts [`WorkCounters`] into virtual time.
#[derive(Debug, Clone, Default)]
pub struct CpuCostModel {
    pub cfg: CpuConfig,
}

impl CpuCostModel {
    pub fn new(cfg: CpuConfig) -> Self {
        CpuCostModel { cfg }
    }

    /// Total cycles implied by the counters.
    pub fn cycles(&self, w: &WorkCounters) -> f64 {
        let c = &self.cfg;
        w.pfor_elements as f64 * c.pfor_cycles_per_elem
            + w.pfor_exceptions as f64 * c.pfor_cycles_per_exception
            + w.ef_elements as f64 * c.ef_cycles_per_elem
            + w.varint_elements as f64 * c.varint_cycles_per_elem
            + w.blocks_decoded as f64 * c.cycles_per_block
            + w.merge_steps as f64 * c.merge_cycles_per_step
            + w.probes as f64 * c.probe_cycles
            + w.skip_probes as f64 * c.skip_probe_cycles
            + w.scored as f64 * c.score_cycles_per_elem
            + w.topk_scanned as f64 * c.topk_cycles_per_elem
            + w.emitted as f64 * c.emit_cycles_per_elem
    }

    /// Virtual time: max of the compute term and the streaming-bandwidth
    /// floor.
    pub fn time(&self, w: &WorkCounters) -> VirtualNanos {
        let compute_ns = self.cycles(w) / self.cfg.clock_hz * 1e9;
        let mem_ns = w.bytes_touched as f64 / self.cfg.mem_bandwidth_bytes_per_sec * 1e9;
        VirtualNanos::from_nanos_f64(compute_ns.max(mem_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut a = WorkCounters {
            merge_steps: 10,
            probes: 3,
            ..Default::default()
        };
        let b = WorkCounters {
            merge_steps: 5,
            ef_elements: 100,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.merge_steps, 15);
        assert_eq!(a.probes, 3);
        assert_eq!(a.ef_elements, 100);
    }

    #[test]
    fn time_scales_linearly_with_work() {
        let model = CpuCostModel::default();
        let w1 = WorkCounters {
            merge_steps: 1_000_000,
            ..Default::default()
        };
        let w2 = WorkCounters {
            merge_steps: 2_000_000,
            ..Default::default()
        };
        let t1 = model.time(&w1).as_nanos() as f64;
        let t2 = model.time(&w2).as_nanos() as f64;
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn bandwidth_floor_kicks_in_for_pure_streaming() {
        let model = CpuCostModel::default();
        let w = WorkCounters {
            bytes_touched: 12_000_000_000, // 1 virtual second at 12 GB/s
            ..Default::default()
        };
        let t = model.time(&w);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01);
    }

    #[test]
    fn default_decode_rates_are_plausible() {
        // 1M PforDelta elements at default rates should land in single-digit
        // milliseconds — the regime Fig. 12's CPU curve implies.
        let model = CpuCostModel::default();
        let w = WorkCounters {
            pfor_elements: 1_000_000,
            pfor_exceptions: 100_000,
            blocks_decoded: 7813,
            ..Default::default()
        };
        let ms = model.time(&w).as_millis_f64();
        assert!(ms > 1.0 && ms < 20.0, "{ms} ms");
    }
}
