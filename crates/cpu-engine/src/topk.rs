//! Top-k selection: the `partial_sort`-style CPU ranking the paper found
//! fastest for the final (small) result lists (§3.1.3, Fig. 7).

use crate::cost::WorkCounters;

/// Selects the `k` highest-scoring documents, ties broken by ascending
/// docID for determinism. Equivalent to C++ `std::partial_sort`:
/// select-nth then sort the prefix.
pub fn top_k(docids: &[u32], scores: &[f32], k: usize, w: &mut WorkCounters) -> Vec<(u32, f32)> {
    assert_eq!(docids.len(), scores.len());
    let n = docids.len();
    w.topk_scanned += n as u64;
    let mut items: Vec<(u32, f32)> = docids.iter().copied().zip(scores.iter().copied()).collect();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let cmp = |a: &(u32, f32), b: &(u32, f32)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
    if k < n {
        items.select_nth_unstable_by(k - 1, cmp);
        items.truncate(k);
    }
    items.sort_unstable_by(cmp);
    w.emitted += k as u64;
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc() -> WorkCounters {
        WorkCounters::default()
    }

    #[test]
    fn selects_highest_scores_in_order() {
        let docids = vec![10u32, 20, 30, 40, 50];
        let scores = vec![0.5f32, 2.0, 1.0, 3.0, 0.1];
        let top = top_k(&docids, &scores, 3, &mut wc());
        assert_eq!(top, vec![(40, 3.0), (20, 2.0), (30, 1.0)]);
    }

    #[test]
    fn k_larger_than_n_returns_all_sorted() {
        let docids = vec![1u32, 2];
        let scores = vec![1.0f32, 5.0];
        let top = top_k(&docids, &scores, 10, &mut wc());
        assert_eq!(top, vec![(2, 5.0), (1, 1.0)]);
    }

    #[test]
    fn ties_break_by_docid() {
        let docids = vec![9u32, 3, 7];
        let scores = vec![1.0f32, 1.0, 1.0];
        let top = top_k(&docids, &scores, 2, &mut wc());
        assert_eq!(top, vec![(3, 1.0), (7, 1.0)]);
    }

    #[test]
    fn zero_k_and_empty_input() {
        assert!(top_k(&[], &[], 10, &mut wc()).is_empty());
        assert!(top_k(&[1], &[1.0], 0, &mut wc()).is_empty());
    }

    #[test]
    fn nan_scores_order_deterministically() {
        // total_cmp gives NaN a fixed place in the order (positive NaN
        // sorts above +inf, so first in a descending sort), so a poisoned
        // score can never make the comparator inconsistent or the output
        // flicker run to run — the old partial_cmp fallback treated NaN
        // as equal to everything, which is not a total order.
        let docids = vec![1u32, 2, 3, 4];
        let scores = vec![1.0f32, f32::NAN, 2.0, f32::NAN];
        let a = top_k(&docids, &scores, 3, &mut wc());
        let b = top_k(&docids, &scores, 3, &mut wc());
        assert_eq!(a.iter().map(|e| e.0).collect::<Vec<_>>(), vec![2, 4, 3]);
        assert_eq!(
            a.iter().map(|e| e.0).collect::<Vec<_>>(),
            b.iter().map(|e| e.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn counters_reflect_scan() {
        let docids: Vec<u32> = (0..1000).collect();
        let scores: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let mut w = wc();
        let top = top_k(&docids, &scores, 10, &mut w);
        assert_eq!(w.topk_scanned, 1000);
        assert_eq!(w.emitted, 10);
        assert_eq!(top[0], (999, 999.0));
    }
}
