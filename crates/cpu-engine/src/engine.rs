//! The CPU query-processing pipeline (SvS + incremental BM25 + top-k).
//!
//! Exposed both as a whole-query engine ([`CpuEngine::process_query`]) and
//! as individual steps ([`CpuEngine::init_intermediate`],
//! [`CpuEngine::intersect_step`]) so Griffin's hybrid scheduler can run any
//! single step on the CPU while others run on the GPU.

use std::cell::RefCell;
use std::sync::Arc;

use griffin_codec::BlockedList;
use griffin_gpu_sim::VirtualNanos;
use griffin_index::{InvertedIndex, TermId};

use crate::cost::{CpuCostModel, WorkCounters};
use crate::decode;
use crate::intersect::{self, Matches};
use crate::listcache::{HostCacheStats, HostListCache};
use crate::rank::Bm25;
use crate::simd;
use crate::topk;

/// The running state of a query between pairwise intersections: the
/// surviving docIDs and their accumulated partial BM25 scores.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Intermediate {
    pub docids: Vec<u32>,
    pub scores: Vec<f32>,
}

impl Intermediate {
    pub fn len(&self) -> usize {
        self.docids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docids.is_empty()
    }
}

/// How a pairwise intersection should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Decompress the long list fully, then linear merge.
    Merge,
    /// Skip-pointer search into the compressed long list.
    SkipBinary,
    /// Decompress fully, then binary search (Fig. 13's "CPU binary").
    PureBinary,
    /// Pick by length ratio (the engine's production behaviour).
    Auto,
}

/// Result of a full query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Top-k (docid, score), best first.
    pub topk: Vec<(u32, f32)>,
    /// Modelled single-core execution time.
    pub time: VirtualNanos,
    /// The work that time was computed from.
    pub counters: WorkCounters,
}

/// What block-max pruning saved (and didn't) on one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Term-frequency blocks the unpruned scorer would have decoded:
    /// every block of the seed list plus, per chain step, the distinct
    /// blocks its matches' tf gathers touch.
    pub tf_blocks_total: u64,
    /// tf blocks the pruned verifier actually decoded.
    pub tf_blocks_decoded: u64,
    /// Candidates surviving the docID-only chain.
    pub candidates: u64,
    /// Candidates fully scored before the bound dropped below the floor.
    pub verified: u64,
}

impl PruneStats {
    /// Fraction of the unpruned tf-decode work that pruning skipped.
    pub fn blocks_skipped_fraction(&self) -> f64 {
        if self.tf_blocks_total == 0 {
            0.0
        } else {
            1.0 - self.tf_blocks_decoded as f64 / self.tf_blocks_total as f64
        }
    }

    pub fn add(&mut self, o: &PruneStats) {
        self.tf_blocks_total += o.tf_blocks_total;
        self.tf_blocks_decoded += o.tf_blocks_decoded;
        self.candidates += o.candidates;
        self.verified += o.verified;
    }
}

/// Result of a block-max pruned query: the same top-k the unpruned path
/// produces (bit-exact), plus what the pruning saved.
#[derive(Debug, Clone)]
pub struct PrunedOutput {
    pub topk: Vec<(u32, f32)>,
    pub time: VirtualNanos,
    pub counters: WorkCounters,
    pub stats: PruneStats,
}

/// The outcome of the docID-only intersection chain: surviving documents
/// with full per-list provenance, so deferred (score-at-the-end) paths can
/// gather term frequencies and block bounds without re-searching.
#[derive(Debug, Clone, Default)]
pub struct ChainResult {
    /// The df-ordered terms the chain ran over (the plan order — exact
    /// scores must fold contributions in this order to match the
    /// incremental pipeline bit-for-bit).
    pub planned: Vec<TermId>,
    /// Surviving docIDs, ascending.
    pub docids: Vec<u32>,
    /// `elem_idx[t][c]`: the global element index of candidate `c` inside
    /// `planned[t]`'s posting list.
    pub elem_idx: Vec<Vec<u32>>,
    /// Distinct tf blocks an unpruned scorer would decode for this chain.
    pub tf_blocks_total: u64,
}

/// The CPU query engine.
#[derive(Debug, Clone, Default)]
pub struct CpuEngine {
    pub model: CpuCostModel,
    pub bm25: Bm25,
    /// `Auto` switches from merge to skip-binary at this long/short ratio.
    pub merge_ratio_threshold: usize,
    /// Host-side decoded-list cache (term → decoded docIDs). Budget 0
    /// (the default) disables it; see [`HostListCache`] for the bit- and
    /// time-exactness invariants. Interior-mutable because every query
    /// entry point takes `&self`.
    host_cache: RefCell<HostListCache>,
}

impl CpuEngine {
    pub fn new() -> Self {
        CpuEngine {
            model: CpuCostModel::default(),
            bm25: Bm25::default(),
            merge_ratio_threshold: 16,
            host_cache: RefCell::new(HostListCache::default()),
        }
    }

    /// Configures the host decoded-list cache's byte budget. 0 (the
    /// default) disables the tier entirely.
    pub fn set_host_cache_budget(&self, bytes: u64) {
        self.host_cache.borrow_mut().set_budget(bytes);
    }

    /// Whether the host decoded-list cache is participating (budget > 0).
    pub fn host_cache_enabled(&self) -> bool {
        self.host_cache.borrow().enabled()
    }

    /// Non-counting residency probe for the cache-aware scheduler.
    pub fn host_cache_contains(&self, term: TermId) -> bool {
        self.host_cache.borrow().contains(term)
    }

    /// Hit/miss/eviction/bytes accounting for the host tier.
    pub fn host_cache_stats(&self) -> HostCacheStats {
        self.host_cache.borrow().stats()
    }

    /// Decoded bytes (plus overhead) resident in the host tier.
    pub fn host_cache_bytes(&self) -> u64 {
        self.host_cache.borrow().bytes_resident()
    }

    /// Drops every cached decoded list (index epoch change).
    pub fn clear_host_cache(&self) {
        self.host_cache.borrow_mut().clear();
    }

    /// Pre-decodes `term`'s docID list into the host cache without
    /// charging the work to any query (an offline warming step, like the
    /// device tier's prefetch). Returns whether the list is now resident.
    pub fn warm_host_cache(&self, index: &InvertedIndex, term: TermId) -> bool {
        if !self.host_cache.borrow().enabled() {
            return false;
        }
        if self.host_cache.borrow().contains(term) {
            return true;
        }
        let mut w = WorkCounters::default();
        let decoded = Arc::new(decode::decode_list(&index.list(term).docs, &mut w));
        self.host_cache.borrow_mut().insert(term, decoded);
        self.host_cache.borrow().contains(term)
    }

    /// Counting cache consult: hit bumps LRU, miss is recorded. Call only
    /// on paths that would otherwise decode the list.
    fn cached_decoded(&self, term: TermId) -> Option<Arc<Vec<u32>>> {
        self.host_cache.borrow_mut().get(term)
    }

    /// The full decoded docID list for `term`: from the host cache on a
    /// hit (no decode charges), else decoded — charging `w` exactly as the
    /// pre-cache code did — and offered to the cache.
    fn decoded_list(
        &self,
        term: TermId,
        list: &BlockedList,
        w: &mut WorkCounters,
    ) -> Arc<Vec<u32>> {
        if let Some(d) = self.cached_decoded(term) {
            return d;
        }
        let d = Arc::new(decode::decode_list(list, w));
        self.host_cache.borrow_mut().insert(term, Arc::clone(&d));
        d
    }

    /// Orders the query's terms by ascending document frequency (SvS starts
    /// with the two rarest terms). Unknown terms yield `None` (empty result).
    ///
    /// Uses [`InvertedIndex::scoring_df`], not the local list length: the
    /// plan order fixes the f32 fold order of the scores, so a shard view
    /// must sort by the same global dfs as the unsharded index or its
    /// last-ulp score bits drift.
    pub fn plan(&self, index: &InvertedIndex, terms: &[TermId]) -> Vec<TermId> {
        let mut ts = terms.to_vec();
        ts.sort_by_key(|&t| index.scoring_df(t));
        ts
    }

    /// Decompresses the first (shortest) list into an [`Intermediate`] with
    /// the term's BM25 contributions as initial scores.
    pub fn init_intermediate(
        &self,
        index: &InvertedIndex,
        term: TermId,
        w: &mut WorkCounters,
    ) -> Intermediate {
        let list = index.list(term);
        let (docids, tfs) = {
            let mut ids = Vec::with_capacity(list.len());
            let mut tfs = Vec::with_capacity(list.len());
            for b in 0..list.num_blocks() {
                decode::decode_block(&list.docs, b, &mut ids, w);
                list.decode_block_into_tfs_only(b, &mut tfs);
            }
            w.varint_elements += tfs.len() as u64;
            (ids, tfs)
        };
        let idf = self
            .bm25
            .idf(index.num_docs(), index.scoring_df(term) as u32);
        let meta = index.meta();
        let scores: Vec<f32> = docids
            .iter()
            .zip(&tfs)
            .map(|(&d, &tf)| {
                self.bm25
                    .contribution(idf, tf, meta.doc_len(d), meta.avg_doc_len)
            })
            .collect();
        w.scored += docids.len() as u64;
        Intermediate { docids, scores }
    }

    /// Intersects the intermediate with `term`'s list, adding the term's
    /// BM25 contributions to the survivors' scores.
    pub fn intersect_step(
        &self,
        index: &InvertedIndex,
        inter: &Intermediate,
        term: TermId,
        strategy: Strategy,
        w: &mut WorkCounters,
    ) -> Intermediate {
        let mut scratch = intersect::QueryScratch::default();
        self.intersect_step_with(index, inter, term, strategy, w, &mut scratch)
    }

    /// [`CpuEngine::intersect_step`] with a caller-provided decode scratch,
    /// so a query loop reuses the block/tf buffers across operations.
    pub fn intersect_step_with(
        &self,
        index: &InvertedIndex,
        inter: &Intermediate,
        term: TermId,
        strategy: Strategy,
        w: &mut WorkCounters,
        scratch: &mut intersect::QueryScratch,
    ) -> Intermediate {
        let list = index.list(term);
        let ratio = if inter.is_empty() {
            usize::MAX
        } else {
            list.len() / inter.len().max(1)
        };
        let strategy = match strategy {
            Strategy::Auto => {
                if ratio >= self.merge_ratio_threshold {
                    Strategy::SkipBinary
                } else {
                    Strategy::Merge
                }
            }
            s => s,
        };

        let matches: Matches = match strategy {
            Strategy::SkipBinary => match self.cached_decoded(term) {
                Some(decoded) => intersect::skip_intersect_range_cached(
                    &inter.docids,
                    &list.docs,
                    &decoded,
                    0,
                    list.num_blocks(),
                    w,
                ),
                None => intersect::skip_intersect_range_with(
                    &inter.docids,
                    &list.docs,
                    0,
                    list.num_blocks(),
                    w,
                    scratch,
                ),
            },
            Strategy::Merge => {
                let long = self.decoded_list(term, &list.docs, w);
                intersect::merge_intersect(&inter.docids, &long, w)
            }
            Strategy::PureBinary => {
                let long = self.decoded_list(term, &list.docs, w);
                intersect::binary_intersect_decoded(&inter.docids, &long, w)
            }
            Strategy::Auto => unreachable!("resolved above"),
        };
        self.score_matches(index, inter, term, matches, w, scratch)
    }

    /// The CPU lane of a co-executed split: intersects `inter` (already
    /// partitioned to this lane's docID range) against the `blocks`
    /// sub-range of `term`'s list. Always skip-binary — the range
    /// restriction *is* a skip-pointer seek. Scoring matches the
    /// unsplit path bit-for-bit (idf uses the full list's document
    /// frequency), so concatenating the two lanes' outputs reproduces the
    /// unsplit result exactly.
    pub fn intersect_step_range(
        &self,
        index: &InvertedIndex,
        inter: &Intermediate,
        term: TermId,
        blocks: std::ops::Range<usize>,
        w: &mut WorkCounters,
        scratch: &mut intersect::QueryScratch,
    ) -> Intermediate {
        let list = index.list(term);
        // Consult-only: a split lane touches just a block sub-range, so a
        // miss does not decode the whole list and must not populate.
        let matches = match self.cached_decoded(term) {
            Some(decoded) => intersect::skip_intersect_range_cached(
                &inter.docids,
                &list.docs,
                &decoded,
                blocks.start,
                blocks.end,
                w,
            ),
            None => intersect::skip_intersect_range_with(
                &inter.docids,
                &list.docs,
                blocks.start,
                blocks.end,
                w,
                scratch,
            ),
        };
        self.score_matches(index, inter, term, matches, w, scratch)
    }

    /// Gathers the new term's tfs for the survivors and accumulates the
    /// term's BM25 contributions onto the carried partial scores.
    fn score_matches(
        &self,
        index: &InvertedIndex,
        inter: &Intermediate,
        term: TermId,
        matches: Matches,
        w: &mut WorkCounters,
        scratch: &mut intersect::QueryScratch,
    ) -> Intermediate {
        let list = index.list(term);
        let tfs = intersect::gather_tfs_with(list, &matches.b_idx, w, scratch);
        let idf = self
            .bm25
            .idf(index.num_docs(), index.scoring_df(term) as u32);
        let meta = index.meta();
        let scores: Vec<f32> = matches
            .docids
            .iter()
            .zip(matches.a_idx.iter())
            .zip(&tfs)
            .map(|((&d, &ai), &tf)| {
                inter.scores[ai as usize]
                    + self
                        .bm25
                        .contribution(idf, tf, meta.doc_len(d), meta.avg_doc_len)
            })
            .collect();
        w.scored += matches.docids.len() as u64;
        Intermediate {
            docids: matches.docids,
            scores,
        }
    }

    /// Evaluates a conjunctive chain to a scored [`Intermediate`] without
    /// the final top-k — the building block the plan executor uses for
    /// AND and phrase nodes whose results feed further set operators.
    pub fn eval_chain(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        w: &mut WorkCounters,
        scratch: &mut intersect::QueryScratch,
    ) -> Intermediate {
        let planned = self.plan(index, terms);
        let Some((&first, rest)) = planned.split_first() else {
            return Intermediate::default();
        };
        let mut inter = self.init_intermediate(index, first, w);
        for &t in rest {
            if inter.is_empty() {
                break;
            }
            inter = self.intersect_step_with(index, &inter, t, Strategy::Auto, w, scratch);
        }
        inter
    }

    /// The docID-only SvS chain: same intersections (same strategy
    /// choices, same docID-side work) as [`CpuEngine::process_query`], but
    /// no tf decoding and no scoring. Provenance indices are carried so a
    /// deferred scorer can reach any survivor's tf — and its block's score
    /// upper bound — by direct lookup.
    pub fn docid_chain(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        w: &mut WorkCounters,
    ) -> ChainResult {
        let planned = self.plan(index, terms);
        let Some((&first, rest)) = planned.split_first() else {
            return ChainResult::default();
        };
        let list0 = index.list(first);
        let mut docids = Vec::with_capacity(list0.len());
        for b in 0..list0.num_blocks() {
            decode::decode_block(&list0.docs, b, &mut docids, w);
        }
        // The unpruned init decodes every seed block's tfs alongside.
        let mut tf_blocks_total = list0.num_blocks() as u64;
        let mut elem_idx: Vec<Vec<u32>> = vec![(0..docids.len() as u32).collect()];
        let mut scratch = intersect::QueryScratch::default();
        for &t in rest {
            if docids.is_empty() {
                break;
            }
            let list = index.list(t);
            // Mirror intersect_step_with's Auto choice so the docID-side
            // work counters match the unpruned chain exactly.
            let ratio = list.len() / docids.len().max(1);
            let m = if ratio >= self.merge_ratio_threshold {
                match self.cached_decoded(t) {
                    Some(decoded) => intersect::skip_intersect_range_cached(
                        &docids,
                        &list.docs,
                        &decoded,
                        0,
                        list.num_blocks(),
                        w,
                    ),
                    None => intersect::skip_intersect_range_with(
                        &docids,
                        &list.docs,
                        0,
                        list.num_blocks(),
                        w,
                        &mut scratch,
                    ),
                }
            } else {
                let long = self.decoded_list(t, &list.docs, w);
                intersect::merge_intersect(&docids, &long, w)
            };
            // Distinct tf blocks the unpruned score_matches would decode
            // for this step's survivors (its gather is block-monotone).
            let bl = list.docs.block_len;
            let mut prev = usize::MAX;
            for &gi in &m.b_idx {
                let blk = gi as usize / bl;
                if blk != prev {
                    tf_blocks_total += 1;
                    prev = blk;
                }
            }
            for col in elem_idx.iter_mut() {
                *col = m.a_idx.iter().map(|&ai| col[ai as usize]).collect();
            }
            elem_idx.push(m.b_idx.clone());
            docids = m.docids;
        }
        ChainResult {
            planned,
            docids,
            elem_idx,
            tf_blocks_total,
        }
    }

    /// Full conjunctive query with block-max top-k pruning: the docID-only
    /// chain first, then candidates verified in descending order of an
    /// optimistic score bound (the sum of their blocks' BM25 upper
    /// bounds), stopping as soon as the bound falls below the k-th best
    /// exact score. Exact scores fold contributions in plan order, so the
    /// returned top-k is bit-identical to [`CpuEngine::process_query`] —
    /// pruning changes only how many tf blocks get decoded.
    pub fn process_query_pruned(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
    ) -> PrunedOutput {
        use std::collections::hash_map::Entry;
        use std::collections::HashMap;

        let mut w = WorkCounters::default();
        let chain = self.docid_chain(index, terms, &mut w);
        let n = chain.docids.len();
        let mut stats = PruneStats {
            tf_blocks_total: chain.tf_blocks_total,
            candidates: n as u64,
            ..Default::default()
        };
        if n == 0 || k == 0 {
            return PrunedOutput {
                topk: Vec::new(),
                time: self.model.time(&w),
                counters: w,
                stats,
            };
        }

        let nterms = chain.planned.len();
        let meta = index.meta();
        let idfs: Vec<f32> = chain
            .planned
            .iter()
            .map(|&t| self.bm25.idf(index.num_docs(), index.scoring_df(t) as u32))
            .collect();
        // Optimistic bound per candidate: its blocks' upper bounds folded
        // in the same left-associated plan order as the exact scorer.
        // f32 addition is monotone, so exact <= bound holds bit-for-bit.
        // The fold runs term-by-term (a vectorizable gather + add per
        // pass), which keeps every candidate's addition order identical
        // to a candidate-by-candidate loop.
        let mut ubs: Vec<f32> = vec![0.0; n];
        for (t, &term) in chain.planned.iter().enumerate() {
            let bl = index.list(term).docs.block_len;
            simd::fold_term_bounds(
                &mut ubs,
                &chain.elem_idx[t],
                bl,
                index.block_ubs(term),
                t == 0,
            );
        }
        w.topk_scanned += (n * nterms) as u64; // the bound pass
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&x, &y| {
            ubs[y as usize]
                .total_cmp(&ubs[x as usize])
                .then(chain.docids[x as usize].cmp(&chain.docids[y as usize]))
        });
        w.topk_scanned += n as u64; // the ordering pass

        let cmp = |a: &(u32, f32), b: &(u32, f32)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
        let mut heap: Vec<(u32, f32)> = Vec::with_capacity(k);
        let mut tf_cache: HashMap<(usize, usize), Vec<u32>> = HashMap::new();
        for &ci in &order {
            let c = ci as usize;
            w.topk_scanned += 1;
            if heap.len() == k && ubs[c] < heap[k - 1].1 {
                // Bounds only shrink from here (descending order) and the
                // floor only rises: nothing left can enter the top-k.
                // `<` is strict — a bound that ties the floor could hide
                // an exact tie that wins on docID, so ties verify.
                break;
            }
            stats.verified += 1;
            let d = chain.docids[c];
            let mut score = 0.0f32;
            for (t, &term) in chain.planned.iter().enumerate() {
                let list = index.list(term);
                let bl = list.docs.block_len;
                let gi = chain.elem_idx[t][c] as usize;
                let blk = gi / bl;
                let tfs = match tf_cache.entry((t, blk)) {
                    Entry::Occupied(e) => e.into_mut(),
                    Entry::Vacant(e) => {
                        let mut buf = Vec::new();
                        list.decode_block_into_tfs_only(blk, &mut buf);
                        w.blocks_decoded += 1;
                        w.varint_elements += buf.len() as u64;
                        stats.tf_blocks_decoded += 1;
                        e.insert(buf)
                    }
                };
                let tf = tfs[gi - blk * bl];
                let contribution =
                    self.bm25
                        .contribution(idfs[t], tf, meta.doc_len(d), meta.avg_doc_len);
                score = if t == 0 {
                    contribution
                } else {
                    score + contribution
                };
            }
            w.scored += nterms as u64;
            let cand = (d, score);
            if heap.len() < k {
                let pos = heap.partition_point(|e| cmp(e, &cand) == std::cmp::Ordering::Less);
                heap.insert(pos, cand);
            } else if cmp(&cand, &heap[k - 1]) == std::cmp::Ordering::Less {
                heap.pop();
                let pos = heap.partition_point(|e| cmp(e, &cand) == std::cmp::Ordering::Less);
                heap.insert(pos, cand);
            }
        }
        w.emitted += heap.len() as u64;
        PrunedOutput {
            topk: heap,
            time: self.model.time(&w),
            counters: w,
            stats,
        }
    }

    /// Full conjunctive query: SvS over all terms, BM25, top-k.
    pub fn process_query(&self, index: &InvertedIndex, terms: &[TermId], k: usize) -> QueryOutput {
        let mut w = WorkCounters::default();
        let planned = self.plan(index, terms);
        let Some((&first, rest)) = planned.split_first() else {
            return QueryOutput {
                topk: Vec::new(),
                time: VirtualNanos::ZERO,
                counters: w,
            };
        };
        let mut inter = self.init_intermediate(index, first, &mut w);
        for &t in rest {
            if inter.is_empty() {
                break;
            }
            inter = self.intersect_step(index, &inter, t, Strategy::Auto, &mut w);
        }
        let topk = topk::top_k(&inter.docids, &inter.scores, k, &mut w);
        QueryOutput {
            topk,
            time: self.model.time(&w),
            counters: w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;
    use griffin_index::IndexBuilder;

    fn small_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(Codec::EliasFano);
        b.add_text("ppopp vienna austria 2018 parallel");
        b.add_text("vienna austria travel");
        b.add_text("ppopp 2018 gpu paper austria");
        b.add_text("gpu parallel merge");
        b.add_text("austria 2018 ppopp vienna");
        b.build()
    }

    fn tids(idx: &InvertedIndex, terms: &[&str]) -> Vec<TermId> {
        terms.iter().map(|t| idx.lookup(t).unwrap()).collect()
    }

    #[test]
    fn conjunctive_query_finds_all_terms_docs() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["ppopp", "austria", "2018"]);
        let out = engine.process_query(&idx, &q, 10);
        let docs: Vec<u32> = out.topk.iter().map(|&(d, _)| d).collect();
        let mut sorted = docs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2, 4]);
        assert!(out.time.as_nanos() > 0);
    }

    #[test]
    fn empty_intersection_yields_no_results() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["travel", "merge"]);
        let out = engine.process_query(&idx, &q, 10);
        assert!(out.topk.is_empty());
    }

    #[test]
    fn scores_are_sums_of_term_contributions() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["ppopp", "austria"]);
        let out = engine.process_query(&idx, &q, 10);
        // Every returned score must exceed any single-term contribution
        // (two positive terms summed).
        for &(_, s) in &out.topk {
            assert!(s > 0.0);
        }
        // Determinism.
        let out2 = engine.process_query(&idx, &q, 10);
        assert_eq!(out.topk, out2.topk);
    }

    #[test]
    fn strategies_agree_on_results() {
        // Synthetic index with one short and one long list.
        let short: Vec<u32> = (0..64u32).map(|i| i * 97 + 5).collect();
        let long: Vec<u32> = (0..8192u32).map(|i| i * 2 + 1).collect();
        let idx = griffin_index::InvertedIndex::from_docid_lists(
            &[short.clone(), long.clone()],
            20_000,
            Codec::EliasFano,
            128,
        );
        let engine = CpuEngine::new();
        let t0 = idx.lookup("t0").unwrap();
        let t1 = idx.lookup("t1").unwrap();
        let mut w = WorkCounters::default();
        let inter = engine.init_intermediate(&idx, t0, &mut w);

        let mut results = Vec::new();
        for s in [Strategy::Merge, Strategy::SkipBinary, Strategy::PureBinary] {
            let mut w = WorkCounters::default();
            let r = engine.intersect_step(&idx, &inter, t1, s, &mut w);
            results.push(r);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn skip_binary_is_cheaper_at_high_ratio() {
        let short: Vec<u32> = (0..32u32).map(|i| i * 50_000 + 3).collect();
        let long: Vec<u32> = (0..1_000_000u32).map(|i| i * 2).collect();
        let idx = griffin_index::InvertedIndex::from_docid_lists(
            &[short, long],
            2_000_001,
            Codec::EliasFano,
            128,
        );
        let engine = CpuEngine::new();
        let t0 = idx.lookup("t0").unwrap();
        let t1 = idx.lookup("t1").unwrap();
        let mut w0 = WorkCounters::default();
        let inter = engine.init_intermediate(&idx, t0, &mut w0);

        let mut w_merge = WorkCounters::default();
        engine.intersect_step(&idx, &inter, t1, Strategy::Merge, &mut w_merge);
        let mut w_skip = WorkCounters::default();
        engine.intersect_step(&idx, &inter, t1, Strategy::SkipBinary, &mut w_skip);

        let t_merge = engine.model.time(&w_merge);
        let t_skip = engine.model.time(&w_skip);
        assert!(
            t_skip.as_nanos() * 20 < t_merge.as_nanos(),
            "skip {} vs merge {}",
            t_skip,
            t_merge
        );
    }

    /// Text corpus with real tf and doc-length variance — the regime where
    /// block-max pruning can actually discriminate. Small blocks keep the
    /// bound granularity meaningful at unit-test corpus size.
    fn varied_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(Codec::EliasFano).with_block_len(32);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..1200 {
            let len = 20 + (next() % 180) as usize;
            let mut tokens = Vec::with_capacity(len);
            for _ in 0..len {
                // Zipf-ish: low word IDs are much more frequent.
                let r = next() % 1000;
                let word = if r < 500 {
                    next() % 10
                } else if r < 850 {
                    10 + next() % 60
                } else {
                    70 + next() % 400
                };
                tokens.push(format!("w{word}"));
            }
            let refs: Vec<&str> = tokens.iter().map(|s| s.as_str()).collect();
            b.add_document(&refs);
        }
        b.build()
    }

    #[test]
    fn pruned_query_is_bit_exact_with_unpruned() {
        let idx = varied_index();
        let engine = CpuEngine::new();
        for terms in [
            vec!["w0", "w1"],
            vec!["w0", "w12", "w3"],
            vec!["w2", "w5", "w20"],
            vec!["w1"],
        ] {
            let Some(q) = terms
                .iter()
                .map(|t| idx.lookup(t))
                .collect::<Option<Vec<_>>>()
            else {
                continue;
            };
            for k in [1usize, 3, 10, 1000] {
                let plain = engine.process_query(&idx, &q, k);
                let pruned = engine.process_query_pruned(&idx, &q, k);
                assert_eq!(plain.topk, pruned.topk, "terms {terms:?} k {k}");
                assert!(
                    pruned.stats.tf_blocks_decoded <= pruned.stats.tf_blocks_total,
                    "decoded {} of {}",
                    pruned.stats.tf_blocks_decoded,
                    pruned.stats.tf_blocks_total
                );
            }
        }
    }

    /// A corpus where the top scores concentrate in a few docID blocks:
    /// every doc contains "hot" and "common" once, except one doc per 200
    /// where "hot" repeats 30×. Blocks without a high-tf doc get a low
    /// upper bound, so the verifier can stop after the hot blocks.
    fn skewed_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(Codec::EliasFano).with_block_len(32);
        for i in 0..2000u32 {
            let hot_tf = if i % 200 == 0 { 30 } else { 1 };
            let mut tokens = vec!["common"];
            tokens.extend(std::iter::repeat_n("hot", hot_tf));
            tokens.resize(40, "filler");
            b.add_document(&tokens);
        }
        b.build()
    }

    #[test]
    fn pruning_skips_tf_blocks_and_is_no_slower() {
        let idx = skewed_index();
        let engine = CpuEngine::new();
        // Both terms are everywhere → 2000 candidates; only the 10 hot
        // docs (and their block-mates) can beat the floor at k = 10.
        let q = vec![idx.lookup("hot").unwrap(), idx.lookup("common").unwrap()];
        let plain = engine.process_query(&idx, &q, 10);
        let pruned = engine.process_query_pruned(&idx, &q, 10);
        assert_eq!(plain.topk, pruned.topk);
        assert!(
            pruned.stats.verified < pruned.stats.candidates,
            "verified {} of {} candidates",
            pruned.stats.verified,
            pruned.stats.candidates
        );
        assert!(
            pruned.stats.blocks_skipped_fraction() > 0.0,
            "stats {:?}",
            pruned.stats
        );
        assert!(
            pruned.time.as_nanos() <= plain.time.as_nanos(),
            "pruned {} vs plain {}",
            pruned.time,
            plain.time
        );
    }

    #[test]
    fn pruned_handles_uniform_tf_ties() {
        // from_docid_lists: tf = 1 everywhere, uniform doc lengths — all
        // final scores identical, so nothing can be pruned and tie-breaks
        // carry the whole result. Must still match bit-for-bit.
        let lists = vec![
            (0..600u32).map(|i| i * 2).collect::<Vec<_>>(),
            (0..900u32).map(|i| i * 3).collect::<Vec<_>>(),
        ];
        let idx = InvertedIndex::from_docid_lists(&lists, 3000, Codec::EliasFano, 128);
        let engine = CpuEngine::new();
        let q = vec![idx.lookup("t0").unwrap(), idx.lookup("t1").unwrap()];
        for k in [1usize, 5, 50] {
            let plain = engine.process_query(&idx, &q, k);
            let pruned = engine.process_query_pruned(&idx, &q, k);
            assert_eq!(plain.topk, pruned.topk, "k = {k}");
        }
    }

    #[test]
    fn pruned_empty_and_degenerate_cases() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["travel", "merge"]); // empty intersection
        assert!(engine.process_query_pruned(&idx, &q, 10).topk.is_empty());
        let q = tids(&idx, &["austria"]);
        assert!(engine.process_query_pruned(&idx, &q, 0).topk.is_empty());
        assert!(engine.process_query_pruned(&idx, &[], 10).topk.is_empty());
    }

    #[test]
    fn docid_chain_provenance_points_back() {
        let idx = varied_index();
        let engine = CpuEngine::new();
        let q = vec![idx.lookup("w0").unwrap(), idx.lookup("w3").unwrap()];
        let mut w = WorkCounters::default();
        let chain = engine.docid_chain(&idx, &q, &mut w);
        assert_eq!(chain.elem_idx.len(), chain.planned.len());
        for (t, &term) in chain.planned.iter().enumerate() {
            let (ids, _) = idx.list(term).decompress();
            for (c, &d) in chain.docids.iter().enumerate() {
                assert_eq!(ids[chain.elem_idx[t][c] as usize], d, "term {t} cand {c}");
            }
        }
    }

    #[test]
    fn eval_chain_matches_process_query_prefix() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["ppopp", "austria", "2018"]);
        let mut w = WorkCounters::default();
        let mut scratch = intersect::QueryScratch::default();
        let inter = engine.eval_chain(&idx, &q, &mut w, &mut scratch);
        let out = engine.process_query(&idx, &q, 100);
        let mut expect: Vec<(u32, f32)> = inter.docids.into_iter().zip(inter.scores).collect();
        expect.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        assert_eq!(out.topk, expect);
    }

    #[test]
    fn plan_orders_by_document_frequency() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["austria", "travel", "ppopp"]);
        let planned = engine.plan(&idx, &q);
        let dfs: Vec<usize> = planned.iter().map(|&t| idx.doc_freq(t)).collect();
        assert!(dfs.windows(2).all(|w| w[0] <= w[1]));
    }
}
