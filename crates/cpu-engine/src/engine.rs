//! The CPU query-processing pipeline (SvS + incremental BM25 + top-k).
//!
//! Exposed both as a whole-query engine ([`CpuEngine::process_query`]) and
//! as individual steps ([`CpuEngine::init_intermediate`],
//! [`CpuEngine::intersect_step`]) so Griffin's hybrid scheduler can run any
//! single step on the CPU while others run on the GPU.

use griffin_gpu_sim::VirtualNanos;
use griffin_index::{InvertedIndex, TermId};

use crate::cost::{CpuCostModel, WorkCounters};
use crate::decode;
use crate::intersect::{self, Matches};
use crate::rank::Bm25;
use crate::topk;

/// The running state of a query between pairwise intersections: the
/// surviving docIDs and their accumulated partial BM25 scores.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Intermediate {
    pub docids: Vec<u32>,
    pub scores: Vec<f32>,
}

impl Intermediate {
    pub fn len(&self) -> usize {
        self.docids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docids.is_empty()
    }
}

/// How a pairwise intersection should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Decompress the long list fully, then linear merge.
    Merge,
    /// Skip-pointer search into the compressed long list.
    SkipBinary,
    /// Decompress fully, then binary search (Fig. 13's "CPU binary").
    PureBinary,
    /// Pick by length ratio (the engine's production behaviour).
    Auto,
}

/// Result of a full query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Top-k (docid, score), best first.
    pub topk: Vec<(u32, f32)>,
    /// Modelled single-core execution time.
    pub time: VirtualNanos,
    /// The work that time was computed from.
    pub counters: WorkCounters,
}

/// The CPU query engine.
#[derive(Debug, Clone, Default)]
pub struct CpuEngine {
    pub model: CpuCostModel,
    pub bm25: Bm25,
    /// `Auto` switches from merge to skip-binary at this long/short ratio.
    pub merge_ratio_threshold: usize,
}

impl CpuEngine {
    pub fn new() -> Self {
        CpuEngine {
            model: CpuCostModel::default(),
            bm25: Bm25::default(),
            merge_ratio_threshold: 16,
        }
    }

    /// Orders the query's terms by ascending document frequency (SvS starts
    /// with the two rarest terms). Unknown terms yield `None` (empty result).
    pub fn plan(&self, index: &InvertedIndex, terms: &[TermId]) -> Vec<TermId> {
        let mut ts = terms.to_vec();
        ts.sort_by_key(|&t| index.doc_freq(t));
        ts
    }

    /// Decompresses the first (shortest) list into an [`Intermediate`] with
    /// the term's BM25 contributions as initial scores.
    pub fn init_intermediate(
        &self,
        index: &InvertedIndex,
        term: TermId,
        w: &mut WorkCounters,
    ) -> Intermediate {
        let list = index.list(term);
        let (docids, tfs) = {
            let mut ids = Vec::with_capacity(list.len());
            let mut tfs = Vec::with_capacity(list.len());
            for b in 0..list.num_blocks() {
                decode::decode_block(&list.docs, b, &mut ids, w);
                list.decode_block_into_tfs_only(b, &mut tfs);
            }
            w.varint_elements += tfs.len() as u64;
            (ids, tfs)
        };
        let idf = self.bm25.idf(index.num_docs(), list.len() as u32);
        let meta = index.meta();
        let scores: Vec<f32> = docids
            .iter()
            .zip(&tfs)
            .map(|(&d, &tf)| {
                self.bm25
                    .contribution(idf, tf, meta.doc_len(d), meta.avg_doc_len)
            })
            .collect();
        w.scored += docids.len() as u64;
        Intermediate { docids, scores }
    }

    /// Intersects the intermediate with `term`'s list, adding the term's
    /// BM25 contributions to the survivors' scores.
    pub fn intersect_step(
        &self,
        index: &InvertedIndex,
        inter: &Intermediate,
        term: TermId,
        strategy: Strategy,
        w: &mut WorkCounters,
    ) -> Intermediate {
        let mut scratch = intersect::QueryScratch::default();
        self.intersect_step_with(index, inter, term, strategy, w, &mut scratch)
    }

    /// [`CpuEngine::intersect_step`] with a caller-provided decode scratch,
    /// so a query loop reuses the block/tf buffers across operations.
    pub fn intersect_step_with(
        &self,
        index: &InvertedIndex,
        inter: &Intermediate,
        term: TermId,
        strategy: Strategy,
        w: &mut WorkCounters,
        scratch: &mut intersect::QueryScratch,
    ) -> Intermediate {
        let list = index.list(term);
        let ratio = if inter.is_empty() {
            usize::MAX
        } else {
            list.len() / inter.len().max(1)
        };
        let strategy = match strategy {
            Strategy::Auto => {
                if ratio >= self.merge_ratio_threshold {
                    Strategy::SkipBinary
                } else {
                    Strategy::Merge
                }
            }
            s => s,
        };

        let matches: Matches = match strategy {
            Strategy::SkipBinary => intersect::skip_intersect_range_with(
                &inter.docids,
                &list.docs,
                0,
                list.num_blocks(),
                w,
                scratch,
            ),
            Strategy::Merge => {
                let long = decode::decode_list(&list.docs, w);
                intersect::merge_intersect(&inter.docids, &long, w)
            }
            Strategy::PureBinary => {
                let long = decode::decode_list(&list.docs, w);
                intersect::binary_intersect_decoded(&inter.docids, &long, w)
            }
            Strategy::Auto => unreachable!("resolved above"),
        };
        self.score_matches(index, inter, term, matches, w, scratch)
    }

    /// The CPU lane of a co-executed split: intersects `inter` (already
    /// partitioned to this lane's docID range) against the `blocks`
    /// sub-range of `term`'s list. Always skip-binary — the range
    /// restriction *is* a skip-pointer seek. Scoring matches the
    /// unsplit path bit-for-bit (idf uses the full list's document
    /// frequency), so concatenating the two lanes' outputs reproduces the
    /// unsplit result exactly.
    pub fn intersect_step_range(
        &self,
        index: &InvertedIndex,
        inter: &Intermediate,
        term: TermId,
        blocks: std::ops::Range<usize>,
        w: &mut WorkCounters,
        scratch: &mut intersect::QueryScratch,
    ) -> Intermediate {
        let list = index.list(term);
        let matches = intersect::skip_intersect_range_with(
            &inter.docids,
            &list.docs,
            blocks.start,
            blocks.end,
            w,
            scratch,
        );
        self.score_matches(index, inter, term, matches, w, scratch)
    }

    /// Gathers the new term's tfs for the survivors and accumulates the
    /// term's BM25 contributions onto the carried partial scores.
    fn score_matches(
        &self,
        index: &InvertedIndex,
        inter: &Intermediate,
        term: TermId,
        matches: Matches,
        w: &mut WorkCounters,
        scratch: &mut intersect::QueryScratch,
    ) -> Intermediate {
        let list = index.list(term);
        let tfs = intersect::gather_tfs_with(list, &matches.b_idx, w, scratch);
        let idf = self.bm25.idf(index.num_docs(), list.len() as u32);
        let meta = index.meta();
        let scores: Vec<f32> = matches
            .docids
            .iter()
            .zip(matches.a_idx.iter())
            .zip(&tfs)
            .map(|((&d, &ai), &tf)| {
                inter.scores[ai as usize]
                    + self
                        .bm25
                        .contribution(idf, tf, meta.doc_len(d), meta.avg_doc_len)
            })
            .collect();
        w.scored += matches.docids.len() as u64;
        Intermediate {
            docids: matches.docids,
            scores,
        }
    }

    /// Full conjunctive query: SvS over all terms, BM25, top-k.
    pub fn process_query(&self, index: &InvertedIndex, terms: &[TermId], k: usize) -> QueryOutput {
        let mut w = WorkCounters::default();
        let planned = self.plan(index, terms);
        let Some((&first, rest)) = planned.split_first() else {
            return QueryOutput {
                topk: Vec::new(),
                time: VirtualNanos::ZERO,
                counters: w,
            };
        };
        let mut inter = self.init_intermediate(index, first, &mut w);
        for &t in rest {
            if inter.is_empty() {
                break;
            }
            inter = self.intersect_step(index, &inter, t, Strategy::Auto, &mut w);
        }
        let topk = topk::top_k(&inter.docids, &inter.scores, k, &mut w);
        QueryOutput {
            topk,
            time: self.model.time(&w),
            counters: w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;
    use griffin_index::IndexBuilder;

    fn small_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(Codec::EliasFano);
        b.add_text("ppopp vienna austria 2018 parallel");
        b.add_text("vienna austria travel");
        b.add_text("ppopp 2018 gpu paper austria");
        b.add_text("gpu parallel merge");
        b.add_text("austria 2018 ppopp vienna");
        b.build()
    }

    fn tids(idx: &InvertedIndex, terms: &[&str]) -> Vec<TermId> {
        terms.iter().map(|t| idx.lookup(t).unwrap()).collect()
    }

    #[test]
    fn conjunctive_query_finds_all_terms_docs() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["ppopp", "austria", "2018"]);
        let out = engine.process_query(&idx, &q, 10);
        let docs: Vec<u32> = out.topk.iter().map(|&(d, _)| d).collect();
        let mut sorted = docs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2, 4]);
        assert!(out.time.as_nanos() > 0);
    }

    #[test]
    fn empty_intersection_yields_no_results() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["travel", "merge"]);
        let out = engine.process_query(&idx, &q, 10);
        assert!(out.topk.is_empty());
    }

    #[test]
    fn scores_are_sums_of_term_contributions() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["ppopp", "austria"]);
        let out = engine.process_query(&idx, &q, 10);
        // Every returned score must exceed any single-term contribution
        // (two positive terms summed).
        for &(_, s) in &out.topk {
            assert!(s > 0.0);
        }
        // Determinism.
        let out2 = engine.process_query(&idx, &q, 10);
        assert_eq!(out.topk, out2.topk);
    }

    #[test]
    fn strategies_agree_on_results() {
        // Synthetic index with one short and one long list.
        let short: Vec<u32> = (0..64u32).map(|i| i * 97 + 5).collect();
        let long: Vec<u32> = (0..8192u32).map(|i| i * 2 + 1).collect();
        let idx = griffin_index::InvertedIndex::from_docid_lists(
            &[short.clone(), long.clone()],
            20_000,
            Codec::EliasFano,
            128,
        );
        let engine = CpuEngine::new();
        let t0 = idx.lookup("t0").unwrap();
        let t1 = idx.lookup("t1").unwrap();
        let mut w = WorkCounters::default();
        let inter = engine.init_intermediate(&idx, t0, &mut w);

        let mut results = Vec::new();
        for s in [Strategy::Merge, Strategy::SkipBinary, Strategy::PureBinary] {
            let mut w = WorkCounters::default();
            let r = engine.intersect_step(&idx, &inter, t1, s, &mut w);
            results.push(r);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn skip_binary_is_cheaper_at_high_ratio() {
        let short: Vec<u32> = (0..32u32).map(|i| i * 50_000 + 3).collect();
        let long: Vec<u32> = (0..1_000_000u32).map(|i| i * 2).collect();
        let idx = griffin_index::InvertedIndex::from_docid_lists(
            &[short, long],
            2_000_001,
            Codec::EliasFano,
            128,
        );
        let engine = CpuEngine::new();
        let t0 = idx.lookup("t0").unwrap();
        let t1 = idx.lookup("t1").unwrap();
        let mut w0 = WorkCounters::default();
        let inter = engine.init_intermediate(&idx, t0, &mut w0);

        let mut w_merge = WorkCounters::default();
        engine.intersect_step(&idx, &inter, t1, Strategy::Merge, &mut w_merge);
        let mut w_skip = WorkCounters::default();
        engine.intersect_step(&idx, &inter, t1, Strategy::SkipBinary, &mut w_skip);

        let t_merge = engine.model.time(&w_merge);
        let t_skip = engine.model.time(&w_skip);
        assert!(
            t_skip.as_nanos() * 20 < t_merge.as_nanos(),
            "skip {} vs merge {}",
            t_skip,
            t_merge
        );
    }

    #[test]
    fn plan_orders_by_document_frequency() {
        let idx = small_index();
        let engine = CpuEngine::new();
        let q = tids(&idx, &["austria", "travel", "ppopp"]);
        let planned = engine.plan(&idx, &q);
        let dfs: Vec<usize> = planned.iter().map(|&t| idx.doc_freq(t)).collect();
        assert!(dfs.windows(2).all(|w| w[0] <= w[1]));
    }
}
