//! Property-based tests of the scheduler and the serving simulator.

use griffin::serving::{Job, Resource, ServingSim, StageReq};
use griffin::{Proc, Scheduler};
use griffin_gpu_sim::VirtualNanos;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Above the minimum-work floor, the decision is monotone in the
    /// ratio: if some ratio goes to the CPU, every higher ratio (same
    /// placement) must too. (Below the floor everything is CPU by
    /// definition, so monotonicity only holds per-side of the floor.)
    #[test]
    fn decision_is_monotone_in_ratio(short in 1usize..1_000_000,
                                     long in 1usize..100_000_000,
                                     longer in 0usize..100_000_000) {
        let s = Scheduler::for_block_len(128);
        let long = long.max(s.min_gpu_work);
        for current in [Proc::Cpu, Proc::Gpu] {
            if s.decide(short, long, current) == Proc::Cpu {
                let bigger = long.saturating_add(longer);
                prop_assert_eq!(s.decide(short, bigger, current), Proc::Cpu,
                    "short={} long={} bigger={} current={:?}", short, long, bigger, current);
            }
        }
        // Below the floor the answer is always CPU.
        if s.min_gpu_work > 1 {
            prop_assert_eq!(s.decide(short, s.min_gpu_work - 1, Proc::Gpu), Proc::Cpu);
        }
    }

    /// Hysteresis only ever *keeps* work on the current processor — it can
    /// never flip a decision toward a migration.
    #[test]
    fn hysteresis_never_forces_migration(short in 1usize..1_000_000,
                                         long in 1usize..100_000_000) {
        let aware = Scheduler::for_block_len(128);
        let static_ = Scheduler {
            placement_aware: false,
            hysteresis: 1.0,
            ..aware.clone()
        };
        for current in [Proc::Cpu, Proc::Gpu] {
            let a = aware.decide(short, long, current);
            let s = static_.decide(short, long, current);
            if a != s {
                // Disagreements must be the aware scheduler *staying put*.
                prop_assert_eq!(a, current);
            }
        }
    }

    /// The paper's Fig. 9 guarantee, as a property over all sizes.
    #[test]
    fn skippable_guarantee_matches_definition(short in 1usize..100_000,
                                              long in 1usize..10_000_000,
                                              block in prop::sample::select(vec![64usize, 128, 256])) {
        let s = Scheduler::for_block_len(block);
        let guaranteed = s.skippable_blocks_guaranteed(short, long, block);
        prop_assert_eq!(guaranteed, short < long.div_ceil(block));
        // Ratio above block size with full blocks implies the guarantee.
        if short > 0 && long >= short * block && long % block == 0 && long / short > block {
            prop_assert!(s.skippable_blocks_guaranteed(short, long, block));
        }
    }

    /// Serving causality: no job finishes before its arrival plus its own
    /// service demand; work is conserved.
    #[test]
    fn serving_respects_causality(durations in vec(vec(1u64..10_000, 1..4), 1..40),
                                  gaps in vec(0u64..5_000, 1..40),
                                  workers in 1usize..6) {
        let n = durations.len().min(gaps.len());
        let mut arrival = VirtualNanos::ZERO;
        let mut jobs = Vec::new();
        for i in 0..n {
            arrival += VirtualNanos::from_nanos(gaps[i]);
            jobs.push(Job {
                arrival,
                stages: durations[i]
                    .iter()
                    .enumerate()
                    .map(|(k, &d)| {
                        let r = if k % 2 == 0 { Resource::Cpu } else { Resource::Gpu };
                        StageReq::new(r, VirtualNanos::from_nanos(d))
                    })
                    .collect(),
            });
        }
        let lat = ServingSim::new(workers).run(&jobs);
        prop_assert_eq!(lat.len(), jobs.len());
        for (job, &l) in jobs.iter().zip(&lat) {
            let service: VirtualNanos = job.stages.iter().map(|s| s.duration).sum();
            prop_assert!(l >= service, "latency {} below service {}", l, service);
        }
    }

    /// More workers never hurt: latencies under w+1 cores are <= under w
    /// for single-stage CPU jobs (a standard queueing sanity property).
    #[test]
    fn extra_workers_never_hurt(durations in vec(1u64..50_000, 2..60)) {
        let jobs: Vec<Job> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| Job {
                arrival: VirtualNanos::from_nanos(i as u64 * 500),
                stages: vec![StageReq::new(Resource::Cpu, VirtualNanos::from_nanos(d))],
            })
            .collect();
        let few: u64 = ServingSim::new(2).run(&jobs).iter().map(|l| l.as_nanos()).sum();
        let many: u64 = ServingSim::new(4).run(&jobs).iter().map(|l| l.as_nanos()).sum();
        prop_assert!(many <= few, "4 cores {many} vs 2 cores {few}");
    }
}
