//! Analytic GPU-step cost model for the hybrid planner.
//!
//! The scheduler's ratio rule (paper §3.2) picks the *processor* for a
//! pairwise intersection; the `min_gpu_work` floor keeps tiny operations
//! off the device because launch, allocation, and PCIe overheads occur
//! once per operation and need enough work to amortize. How much work is
//! "enough" depends on whether those PCIe transfers are *serialized*
//! with compute or *pipelined* behind it (see [`griffin_gpu_sim::stream`]):
//! with copy/compute overlap the next list ships while the previous step's
//! kernels run, so the per-step cost drops from `fixed + transfer +
//! compute` to `fixed + max(transfer, compute)` and the profitable-work
//! crossover moves down.
//!
//! [`CostModel`] captures both estimates from a [`DeviceConfig`] and
//! solves for the smallest profitable long-list length, which
//! [`crate::Scheduler::apply_cost_model`] installs as the floor. The
//! model is deliberately coarse — a handful of calibrated constants, not
//! a re-simulation — because the planner only needs the crossover's
//! order of magnitude.

use griffin_gpu_sim::{DeviceConfig, VirtualNanos};

/// Approximate bytes shipped over PCIe per long-list element: Elias-Fano
/// docids (~1.3 B/elem at realistic densities) plus packed term
/// frequencies and block metadata.
const BYTES_PER_ELEM: f64 = 2.5;

/// Device-memory traffic per long-list element across the step's passes
/// (decompress + decode + merge + score), used for the bandwidth-bound
/// compute estimate.
const DEVICE_TRAFFIC_BYTES_PER_ELEM: f64 = 24.0;

/// Kernel launches charged per intersection step (decompress, tf decode,
/// partition, merge, scan, score).
const LAUNCHES_PER_STEP: u64 = 6;

/// Device allocations charged per intersection step.
const MALLOCS_PER_STEP: u64 = 6;

/// Per-step cost estimates for one GPU pairwise intersection, serial and
/// pipelined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-step overhead (launches + allocations), ns.
    pub fixed_ns: f64,
    /// Fixed per-transfer PCIe latency, ns.
    pub pcie_latency_ns: f64,
    /// PCIe transfer cost per long-list element, ns.
    pub pcie_ns_per_elem: f64,
    /// Device compute (bandwidth-bound decode + merge) per long-list
    /// element, ns.
    pub gpu_ns_per_elem: f64,
    /// Host cost per long-list element for the same operation, ns.
    /// Defaults to ~30 cycles/element at the paper CPU's 2.5 GHz
    /// (Elias-Fano decode at 24 cycles plus merge steps at 18, amortized
    /// over partial skipping); override with
    /// [`CostModel::with_cpu_ns_per_elem`] if measurements disagree.
    pub cpu_ns_per_elem: f64,
    /// Whether transfers pipeline behind the previous step's compute.
    pub overlap: bool,
}

impl CostModel {
    /// Derives the model from a device configuration.
    pub fn from_device(cfg: &DeviceConfig, overlap: bool) -> CostModel {
        CostModel {
            fixed_ns: (LAUNCHES_PER_STEP * cfg.kernel_launch_overhead_ns
                + MALLOCS_PER_STEP * cfg.malloc_overhead_ns) as f64,
            pcie_latency_ns: cfg.pcie.latency_ns as f64,
            pcie_ns_per_elem: BYTES_PER_ELEM / cfg.pcie.bandwidth_bytes_per_sec * 1.0e9,
            gpu_ns_per_elem: DEVICE_TRAFFIC_BYTES_PER_ELEM / cfg.global_bandwidth_bytes_per_sec
                * 1.0e9,
            cpu_ns_per_elem: 12.0,
            overlap,
        }
    }

    /// Replaces the host-side per-element estimate.
    pub fn with_cpu_ns_per_elem(mut self, ns: f64) -> CostModel {
        self.cpu_ns_per_elem = ns;
        self
    }

    /// PCIe cost of shipping a `long_len`-element list, ns.
    pub fn transfer_ns(&self, long_len: usize) -> f64 {
        self.pcie_latency_ns + self.pcie_ns_per_elem * long_len as f64
    }

    /// Device compute cost of one step against a `long_len` list, ns.
    pub fn compute_ns(&self, long_len: usize) -> f64 {
        self.gpu_ns_per_elem * long_len as f64
    }

    /// Serial step estimate: transfer, then compute.
    pub fn gpu_step_serial_ns(&self, long_len: usize) -> f64 {
        self.fixed_ns + self.transfer_ns(long_len) + self.compute_ns(long_len)
    }

    /// Pipelined step estimate: the upload hides behind the previous
    /// step's compute, so only the longer of the two engines bounds the
    /// steady-state step.
    pub fn gpu_step_pipelined_ns(&self, long_len: usize) -> f64 {
        self.fixed_ns + self.transfer_ns(long_len).max(self.compute_ns(long_len))
    }

    /// The estimate matching this model's `overlap` mode.
    pub fn gpu_step_ns(&self, long_len: usize) -> f64 {
        if self.overlap {
            self.gpu_step_pipelined_ns(long_len)
        } else {
            self.gpu_step_serial_ns(long_len)
        }
    }

    /// Same, as a virtual duration (for timeline annotations).
    pub fn gpu_step_time(&self, long_len: usize) -> VirtualNanos {
        VirtualNanos::from_nanos(self.gpu_step_ns(long_len).max(0.0) as u64)
    }

    /// Host estimate for the same operation, ns.
    pub fn cpu_step_ns(&self, long_len: usize) -> f64 {
        self.cpu_ns_per_elem * long_len as f64
    }

    /// Smallest long-list length at which the GPU step beats the CPU
    /// step under this model — the overlap-aware `min_gpu_work` floor.
    ///
    /// Solved by doubling scan (the curves cross once: GPU has higher
    /// fixed cost, lower slope). Clamped to `[256, 1 << 22]`; the upper
    /// clamp also covers configs where the GPU never wins.
    pub fn min_profitable_long_len(&self) -> usize {
        const LO: usize = 256;
        const HI: usize = 1 << 22;
        let mut len = LO;
        while len <= HI {
            if self.gpu_step_ns(len) < self.cpu_step_ns(len) {
                return len;
            }
            len *= 2;
        }
        HI
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_step_is_never_slower_than_serial() {
        for cfg in [DeviceConfig::tesla_k20(), DeviceConfig::test_tiny()] {
            let serial = CostModel::from_device(&cfg, false);
            let pipelined = CostModel::from_device(&cfg, true);
            for len in [0usize, 100, 10_000, 1_000_000] {
                assert!(pipelined.gpu_step_ns(len) <= serial.gpu_step_ns(len));
            }
        }
    }

    #[test]
    fn overlap_lowers_the_profitable_work_floor() {
        let cfg = DeviceConfig::tesla_k20();
        let serial = CostModel::from_device(&cfg, false);
        let pipelined = CostModel::from_device(&cfg, true);
        assert!(
            pipelined.min_profitable_long_len() <= serial.min_profitable_long_len(),
            "hiding transfers must not raise the crossover"
        );
    }

    #[test]
    fn crossover_is_finite_and_clamped() {
        let cfg = DeviceConfig::test_tiny();
        let m = CostModel::from_device(&cfg, true);
        let floor = m.min_profitable_long_len();
        assert!((256..=1 << 22).contains(&floor));
        // A CPU so fast the GPU never wins hits the upper clamp.
        let never = m.with_cpu_ns_per_elem(0.0);
        assert_eq!(never.min_profitable_long_len(), 1 << 22);
    }
}
