//! Analytic GPU-step cost model for the hybrid planner.
//!
//! The scheduler's ratio rule (paper §3.2) picks the *processor* for a
//! pairwise intersection; the `min_gpu_work` floor keeps tiny operations
//! off the device because launch, allocation, and PCIe overheads occur
//! once per operation and need enough work to amortize. How much work is
//! "enough" depends on whether those PCIe transfers are *serialized*
//! with compute or *pipelined* behind it (see [`griffin_gpu_sim::stream`]):
//! with copy/compute overlap the next list ships while the previous step's
//! kernels run, so the per-step cost drops from `fixed + transfer +
//! compute` to `fixed + max(transfer, compute)` and the profitable-work
//! crossover moves down.
//!
//! [`CostModel`] captures both estimates from a [`DeviceConfig`] and
//! solves for the smallest profitable long-list length, which
//! [`crate::Scheduler::apply_cost_model`] installs as the floor. The
//! model is deliberately coarse — a handful of calibrated constants, not
//! a re-simulation — because the planner only needs the crossover's
//! order of magnitude.

use griffin_gpu_sim::{DeviceConfig, VirtualNanos};

/// Approximate bytes shipped over PCIe per long-list element: Elias-Fano
/// docids (~1.3 B/elem at realistic densities) plus packed term
/// frequencies and block metadata.
const BYTES_PER_ELEM: f64 = 2.5;

/// Device-memory traffic per long-list element across the step's passes
/// (decompress + decode + merge + score), used for the bandwidth-bound
/// compute estimate.
const DEVICE_TRAFFIC_BYTES_PER_ELEM: f64 = 24.0;

/// Kernel launches charged per intersection step. Counted against the
/// simulator's full-decompression path: popcount, scatter, recover and
/// tf-decode for the decompress, two scans (each a tile pass plus a
/// uniform-add), merge-path partition/merge/compact, and the score
/// accumulator.
const LAUNCHES_PER_STEP: u64 = 13;

/// Device allocations charged per intersection step (prefix sums, index
/// array, decoded docids/tfs, partition diagonals, match buffers, the
/// compacted result and its scores).
const MALLOCS_PER_STEP: u64 = 10;

/// PCIe transactions per step: the range upload (docids + tf side file +
/// block metadata ship as separate buffers) plus the result download
/// (matched docids, scores, and the length word). Each pays the link's
/// fixed latency even when pipelining hides the bandwidth term.
const TRANSFERS_PER_STEP: u64 = 7;

/// Dependent global-memory accesses on the tf side-file decoder's
/// critical path. The decoder runs one thread per 128-element
/// compression block, and each varint costs ~4 serially dependent
/// global accesses, so the kernel's wall time is pinned at
/// `128 x 4` un-hideable memory latencies *no matter how many blocks
/// decode in parallel* — a per-step floor, not a per-element slope.
const SERIAL_DECODE_GMEM_ACCESSES: f64 = 512.0;

/// Fraction of the host's per-probe skip cost that a host-cached decoded
/// list removes. A skip probe is roughly half navigation (gallop over the
/// skip array + in-block binary search) and half candidate-block decode;
/// with the decoded list resident in the host cache the decode half
/// vanishes (see `griffin_cpu::intersect::skip_intersect_range_cached`).
const CACHED_SKIP_DISCOUNT: f64 = 0.5;

/// Issue/latency-bound device cycles per long-list element across the
/// decompress + merge passes. The kernels are not bandwidth-bound at
/// these list sizes (calibrated against the simulator: ~0.5 ns/elem on
/// the 706 MHz K20, i.e. ~0.35 cycles once the serial floor is peeled
/// off), so the compute estimate takes the max of this and the
/// bandwidth bound.
const DEVICE_CYCLES_PER_ELEM: f64 = 0.35;

/// Wall-clock kernel measurements from the host, produced by the
/// `exp_kernels` calibration bench in `griffin-bench` (warmup +
/// median-of-runs over deterministic workloads). These are *measured*
/// numbers for the host actually running the engine, as opposed to the
/// hand-set defaults in [`CostModel::from_device`] that describe the
/// paper's Xeon E5-2609v2.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelMeasurements {
    /// Block decode cost per element, ns (PforDelta/EF mix as measured).
    pub cpu_decode_ns_per_elem: f64,
    /// Merge-loop cost per long-list element, ns (compare + advance).
    pub cpu_merge_ns_per_elem: f64,
    /// Skip-strategy cost per short-list probe, ns (gallop over the skip
    /// array + candidate block decode amortized + in-block search).
    pub cpu_skip_ns_per_probe: f64,
}

/// Per-step cost estimates for one GPU pairwise intersection, serial and
/// pipelined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-step overhead (launches + allocations + the extra
    /// per-transfer link latencies beyond the one priced into
    /// [`CostModel::transfer_ns`]), ns.
    pub fixed_ns: f64,
    /// Serially dependent decode latency per step, ns — the tf
    /// side-file decoder's critical path (see
    /// `SERIAL_DECODE_GMEM_ACCESSES`). A wall-clock floor on every
    /// full-decompression device step, independent of list length.
    pub serial_decode_ns: f64,
    /// Fixed per-transfer PCIe latency, ns.
    pub pcie_latency_ns: f64,
    /// PCIe transfer cost per long-list element, ns.
    pub pcie_ns_per_elem: f64,
    /// Device compute per long-list element, ns: the max of the
    /// bandwidth bound and the issue/latency bound
    /// (`DEVICE_CYCLES_PER_ELEM`).
    pub gpu_ns_per_elem: f64,
    /// Host cost per long-list element for a *merge* intersection
    /// (decode the whole list, linear merge): ~30 cycles/element at the
    /// paper CPU's 2.5 GHz. Override with
    /// [`CostModel::with_cpu_ns_per_elem`] if measurements disagree.
    pub cpu_ns_per_elem: f64,
    /// The decode share of `cpu_ns_per_elem` — what a host-cached
    /// (already-decoded) list saves per element in the merge regime.
    /// Calibration sets it to the measured decode slope; the hand-set
    /// default is a third of the merge-regime total.
    pub cpu_decode_ns_per_elem: f64,
    /// Host cost per *short-list* element for a skip-pointer
    /// intersection (gallop over skips + one in-block binary search per
    /// probe): ~250 cycles at 2.5 GHz. The skip strategy's cost scales
    /// with the short list, which is what makes the CPU competitive at
    /// high length ratios.
    pub cpu_skip_ns_per_probe: f64,
    /// Whether transfers pipeline behind the previous step's compute.
    pub overlap: bool,
}

impl CostModel {
    /// Derives the model from a device configuration.
    pub fn from_device(cfg: &DeviceConfig, overlap: bool) -> CostModel {
        let ns_per_cycle = cfg.ns_per_cycle();
        CostModel {
            fixed_ns: (LAUNCHES_PER_STEP * cfg.kernel_launch_overhead_ns
                + MALLOCS_PER_STEP * cfg.malloc_overhead_ns
                + (TRANSFERS_PER_STEP - 1) * cfg.pcie.latency_ns) as f64,
            serial_decode_ns: SERIAL_DECODE_GMEM_ACCESSES
                * cfg.costs.gmem_latency_cycles
                * ns_per_cycle,
            pcie_latency_ns: cfg.pcie.latency_ns as f64,
            pcie_ns_per_elem: BYTES_PER_ELEM / cfg.pcie.bandwidth_bytes_per_sec * 1.0e9,
            gpu_ns_per_elem: (DEVICE_TRAFFIC_BYTES_PER_ELEM / cfg.global_bandwidth_bytes_per_sec
                * 1.0e9)
                .max(DEVICE_CYCLES_PER_ELEM * ns_per_cycle),
            cpu_ns_per_elem: 12.0,
            cpu_decode_ns_per_elem: 4.0,
            cpu_skip_ns_per_probe: 100.0,
            overlap,
        }
    }

    /// Replaces the host-side per-element merge estimate.
    pub fn with_cpu_ns_per_elem(mut self, ns: f64) -> CostModel {
        self.cpu_ns_per_elem = ns;
        self
    }

    /// Replaces the host-side per-probe skip estimate.
    pub fn with_cpu_skip_ns_per_probe(mut self, ns: f64) -> CostModel {
        self.cpu_skip_ns_per_probe = ns;
        self
    }

    /// Replaces the host-side estimates with measured wall-clock numbers.
    ///
    /// The model's `cpu_ns_per_elem` prices the *merge regime* — decode
    /// the whole long list, then a linear merge — so the calibrated value
    /// is the sum of the measured decode and merge slopes. The skip slope
    /// maps directly. Everything device-side is left untouched: wall-clock
    /// calibration moves the CPU curves, and with them the crossover that
    /// the scheduler, split balancer, and pruning paths consult.
    pub fn calibrated_from(self, m: &KernelMeasurements) -> CostModel {
        let mut cal = self
            .with_cpu_ns_per_elem(m.cpu_decode_ns_per_elem + m.cpu_merge_ns_per_elem)
            .with_cpu_skip_ns_per_probe(m.cpu_skip_ns_per_probe);
        cal.cpu_decode_ns_per_elem = m.cpu_decode_ns_per_elem;
        cal
    }

    /// PCIe cost of shipping a `long_len`-element list, ns.
    pub fn transfer_ns(&self, long_len: usize) -> f64 {
        self.pcie_latency_ns + self.pcie_ns_per_elem * long_len as f64
    }

    /// Device compute cost of one step against a `long_len` list, ns.
    pub fn compute_ns(&self, long_len: usize) -> f64 {
        self.gpu_ns_per_elem * long_len as f64
    }

    /// Serial step estimate: transfer, then compute, on top of the
    /// fixed overheads and the serial-decode floor.
    pub fn gpu_step_serial_ns(&self, long_len: usize) -> f64 {
        self.fixed_ns
            + self.serial_decode_ns
            + self.transfer_ns(long_len)
            + self.compute_ns(long_len)
    }

    /// Pipelined step estimate: the upload hides behind the previous
    /// step's compute, so only the longer of the two engines bounds the
    /// steady-state step. The fixed overheads and the serial-decode
    /// floor do not pipeline away.
    pub fn gpu_step_pipelined_ns(&self, long_len: usize) -> f64 {
        self.fixed_ns
            + self.serial_decode_ns
            + self.transfer_ns(long_len).max(self.compute_ns(long_len))
    }

    /// The estimate matching this model's `overlap` mode.
    pub fn gpu_step_ns(&self, long_len: usize) -> f64 {
        if self.overlap {
            self.gpu_step_pipelined_ns(long_len)
        } else {
            self.gpu_step_serial_ns(long_len)
        }
    }

    /// Same, as a virtual duration (for timeline annotations).
    pub fn gpu_step_time(&self, long_len: usize) -> VirtualNanos {
        VirtualNanos::from_nanos(self.gpu_step_ns(long_len).max(0.0) as u64)
    }

    /// Host estimate for a whole-list *merge* intersection, ns. This is
    /// the regime the `min_gpu_work` floor compares against: at the low
    /// ratios where GPU placement is in question, the host decodes the
    /// whole list and merges.
    pub fn cpu_step_ns(&self, long_len: usize) -> f64 {
        self.cpu_ns_per_elem * long_len as f64
    }

    /// Host estimate for one intersection of `short_len` probes against
    /// a `long_len` list, ns: the cheaper of the merge strategy (decode
    /// everything, cost follows the long list) and the skip strategy
    /// (one gallop + in-block binary search per probe, cost follows the
    /// short list) — mirroring the CPU engine's own strategy choice.
    pub fn cpu_intersect_ns(&self, short_len: usize, long_len: usize) -> f64 {
        let merge = self.cpu_ns_per_elem * long_len as f64;
        let skip = self.cpu_skip_ns_per_probe * short_len as f64;
        merge.min(skip)
    }

    /// Host merge-regime estimate when the long list's decoded form is
    /// resident in the host cache: the decode slope drops out, only the
    /// linear merge remains. Never more than [`CostModel::cpu_step_ns`].
    pub fn cpu_step_host_resident_ns(&self, long_len: usize) -> f64 {
        (self.cpu_ns_per_elem - self.cpu_decode_ns_per_elem).max(0.0) * long_len as f64
    }

    /// [`CostModel::cpu_intersect_ns`] when the long list is host-cached:
    /// the merge arm loses its decode slope and the skip arm loses its
    /// candidate-block-decode share (`CACHED_SKIP_DISCOUNT`). Never more
    /// than the non-resident estimate.
    pub fn cpu_intersect_host_resident_ns(&self, short_len: usize, long_len: usize) -> f64 {
        let merge = self.cpu_step_host_resident_ns(long_len);
        let skip = self.cpu_skip_ns_per_probe * CACHED_SKIP_DISCOUNT * short_len as f64;
        merge.min(skip)
    }

    /// Device step estimate when the long list is already device-resident
    /// (in the LRU cache or landing via prefetch): the PCIe terms drop
    /// out entirely; launch, allocation, and the serial-decode floor
    /// remain. Identical in serial and pipelined modes — there is no
    /// transfer left to hide. Never more than [`CostModel::gpu_step_ns`].
    pub fn gpu_step_device_resident_ns(&self, long_len: usize) -> f64 {
        self.fixed_ns + self.serial_decode_ns + self.compute_ns(long_len)
    }

    /// Solves for the GPU share of a docID-range split so that both
    /// lanes of a co-executed intersection finish together.
    ///
    /// A split hands the first `f·L` long-list elements to the device
    /// and the remaining `(1−f)·L` — carrying `(1−f)` of the short
    /// list's probes, since docIDs are roughly uniform across the range
    /// — to the host. The step costs `max(gpu_step(f·L),
    /// cpu_intersect((1−f)·S, (1−f)·L))`, which is minimized where the
    /// two curves meet. `g(f) = gpu − cpu` is monotone increasing in
    /// `f` (the GPU term grows, the CPU term shrinks), so the root is
    /// found by bisection. Returns 0.0 when even an empty GPU slice
    /// cannot amortize the fixed launch/transfer/decode overheads (the
    /// whole operation belongs on the CPU) and 1.0 when the device
    /// beats the host even carrying the full list.
    pub fn split_fraction(&self, short_len: usize, long_len: usize) -> f64 {
        if long_len == 0 {
            return 0.0;
        }
        let l = long_len as f64;
        let s = short_len as f64;
        let g = |f: f64| {
            let gpu_elems = (f * l).round() as usize;
            let cpu_elems = long_len - gpu_elems.min(long_len);
            let cpu_probes = ((1.0 - f) * s).round() as usize;
            self.gpu_step_ns(gpu_elems) - self.cpu_intersect_ns(cpu_probes, cpu_elems)
        };
        if g(0.0) >= 0.0 {
            return 0.0; // fixed GPU overhead alone exceeds the CPU's whole-list cost
        }
        if g(1.0) <= 0.0 {
            return 1.0; // the device wins even carrying the entire list
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if g(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let f = 0.5 * (lo + hi);
        // A lane owed less than one element of either list is no lane at
        // all (no short element means no possible match): snap to the
        // degenerate single-processor answer.
        if f * l < 1.0 || f * s < 1.0 {
            0.0
        } else if (1.0 - f) * l < 1.0 || (1.0 - f) * s < 1.0 {
            1.0
        } else {
            f
        }
    }

    /// [`CostModel::split_fraction`] when the long list's decoded form
    /// is host-cached. The CPU lane intersects against the resident
    /// vector (no decode), so its curve drops and the balanced device
    /// share shrinks — or collapses to 0 when the resident host beats
    /// even an empty device slice's fixed overheads. The device lane is
    /// *not* discounted: a split's range upload bypasses the device LRU
    /// cache, so it pays full PCIe either way. Same bisection; `g(f)`
    /// stays monotone because only the CPU curve's slope changed.
    pub fn split_fraction_host_resident(&self, short_len: usize, long_len: usize) -> f64 {
        if long_len == 0 {
            return 0.0;
        }
        let l = long_len as f64;
        let s = short_len as f64;
        let g = |f: f64| {
            let gpu_elems = (f * l).round() as usize;
            let cpu_elems = long_len - gpu_elems.min(long_len);
            let cpu_probes = ((1.0 - f) * s).round() as usize;
            self.gpu_step_ns(gpu_elems) - self.cpu_intersect_host_resident_ns(cpu_probes, cpu_elems)
        };
        if g(0.0) >= 0.0 {
            return 0.0;
        }
        if g(1.0) <= 0.0 {
            return 1.0;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if g(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let f = 0.5 * (lo + hi);
        if f * l < 1.0 || f * s < 1.0 {
            0.0
        } else if (1.0 - f) * l < 1.0 || (1.0 - f) * s < 1.0 {
            1.0
        } else {
            f
        }
    }

    /// Smallest long-list length at which the GPU step beats the CPU
    /// step under this model — the overlap-aware `min_gpu_work` floor.
    ///
    /// Solved by doubling scan (the curves cross once: GPU has higher
    /// fixed cost, lower slope). Clamped to `[256, 1 << 22]`; the upper
    /// clamp also covers configs where the GPU never wins.
    pub fn min_profitable_long_len(&self) -> usize {
        const LO: usize = 256;
        const HI: usize = 1 << 22;
        let mut len = LO;
        while len <= HI {
            if self.gpu_step_ns(len) < self.cpu_step_ns(len) {
                return len;
            }
            len *= 2;
        }
        HI
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_step_is_never_slower_than_serial() {
        for cfg in [DeviceConfig::tesla_k20(), DeviceConfig::test_tiny()] {
            let serial = CostModel::from_device(&cfg, false);
            let pipelined = CostModel::from_device(&cfg, true);
            for len in [0usize, 100, 10_000, 1_000_000] {
                assert!(pipelined.gpu_step_ns(len) <= serial.gpu_step_ns(len));
            }
        }
    }

    #[test]
    fn overlap_lowers_the_profitable_work_floor() {
        let cfg = DeviceConfig::tesla_k20();
        let serial = CostModel::from_device(&cfg, false);
        let pipelined = CostModel::from_device(&cfg, true);
        assert!(
            pipelined.min_profitable_long_len() <= serial.min_profitable_long_len(),
            "hiding transfers must not raise the crossover"
        );
    }

    #[test]
    fn split_fraction_balances_the_lanes() {
        let cfg = DeviceConfig::tesla_k20();
        let m = CostModel::from_device(&cfg, true);
        // Well above the profitable floor, at the crossover ratio, the
        // split should be interior and the two lanes should land within
        // a few percent of each other at the solved fraction.
        let long_len = 4 * m.min_profitable_long_len();
        let short_len = long_len / 64;
        let f = m.split_fraction(short_len, long_len);
        assert!((0.0..=1.0).contains(&f));
        if f > 0.0 && f < 1.0 {
            let gpu_elems = (f * long_len as f64).round() as usize;
            let gpu = m.gpu_step_ns(gpu_elems);
            let cpu_probes = ((1.0 - f) * short_len as f64).round() as usize;
            let cpu = m.cpu_intersect_ns(cpu_probes, long_len - gpu_elems);
            let imbalance = (gpu - cpu).abs() / gpu.max(cpu);
            assert!(imbalance < 0.05, "lanes off by {imbalance:.3}");
        }
    }

    #[test]
    fn split_fraction_degenerates_sensibly() {
        let cfg = DeviceConfig::tesla_k20();
        let m = CostModel::from_device(&cfg, true);
        assert_eq!(m.split_fraction(4, 0), 0.0);
        // Tiny lists cannot amortize the fixed device overheads at all.
        assert_eq!(m.split_fraction(4, 16), 0.0);
        // A host so slow the device should take everything.
        let slow_cpu = m
            .with_cpu_ns_per_elem(1.0e6)
            .with_cpu_skip_ns_per_probe(1.0e7);
        assert_eq!(slow_cpu.split_fraction(1 << 16, 1 << 20), 1.0);
        // A host so fast the device earns nothing.
        let fast_cpu = m.with_cpu_ns_per_elem(1.0e-6);
        assert_eq!(fast_cpu.split_fraction(1 << 16, 1 << 20), 0.0);
    }

    #[test]
    fn skip_regime_shrinks_the_device_share_at_high_ratios() {
        let cfg = DeviceConfig::tesla_k20();
        let m = CostModel::from_device(&cfg, true);
        let long_len = 1 << 20;
        // The shorter the probe side, the cheaper the host's skip
        // search, and the less long-list the device deserves.
        let f_lo = m.split_fraction(long_len / 16, long_len);
        let f_hi = m.split_fraction(long_len / 256, long_len);
        assert!(
            f_hi <= f_lo,
            "device share must not grow as the host gets cheaper ({f_lo} -> {f_hi})"
        );
        // And at an extreme ratio the skip search wins outright.
        assert_eq!(m.split_fraction(64, long_len), 0.0);
    }

    #[test]
    fn calibration_moves_only_the_cpu_curves() {
        let cfg = DeviceConfig::tesla_k20();
        let base = CostModel::from_device(&cfg, true);
        let m = KernelMeasurements {
            cpu_decode_ns_per_elem: 1.5,
            cpu_merge_ns_per_elem: 2.5,
            cpu_skip_ns_per_probe: 40.0,
        };
        let cal = base.calibrated_from(&m);
        assert_eq!(cal.cpu_ns_per_elem, 4.0);
        assert_eq!(cal.cpu_skip_ns_per_probe, 40.0);
        assert_eq!(cal.fixed_ns, base.fixed_ns);
        assert_eq!(cal.gpu_ns_per_elem, base.gpu_ns_per_elem);
        assert_eq!(cal.pcie_ns_per_elem, base.pcie_ns_per_elem);
        // A faster measured CPU raises the profitable-work floor.
        let fast = base.calibrated_from(&KernelMeasurements {
            cpu_decode_ns_per_elem: 0.5,
            cpu_merge_ns_per_elem: 0.5,
            cpu_skip_ns_per_probe: 10.0,
        });
        assert!(fast.min_profitable_long_len() >= base.min_profitable_long_len());
    }

    #[test]
    fn resident_costs_never_exceed_cold_costs() {
        for cfg in [DeviceConfig::tesla_k20(), DeviceConfig::test_tiny()] {
            for overlap in [false, true] {
                let m = CostModel::from_device(&cfg, overlap);
                for len in [0usize, 100, 10_000, 1 << 20] {
                    assert!(m.cpu_step_host_resident_ns(len) <= m.cpu_step_ns(len));
                    assert!(m.gpu_step_device_resident_ns(len) <= m.gpu_step_ns(len));
                    let short = len / 16;
                    assert!(
                        m.cpu_intersect_host_resident_ns(short, len)
                            <= m.cpu_intersect_ns(short, len)
                    );
                }
            }
        }
    }

    #[test]
    fn host_residency_shrinks_the_device_share() {
        let cfg = DeviceConfig::tesla_k20();
        let m = CostModel::from_device(&cfg, true);
        let long_len = 4 * m.min_profitable_long_len();
        for short_len in [long_len / 16, long_len / 64, long_len / 256] {
            let cold = m.split_fraction(short_len, long_len);
            let resident = m.split_fraction_host_resident(short_len, long_len);
            assert!(
                resident <= cold,
                "a cheaper host lane must not grow the device share \
                 ({cold} -> {resident} at short={short_len})"
            );
        }
    }

    #[test]
    fn calibration_sets_the_decode_share() {
        let cfg = DeviceConfig::tesla_k20();
        let cal = CostModel::from_device(&cfg, true).calibrated_from(&KernelMeasurements {
            cpu_decode_ns_per_elem: 1.5,
            cpu_merge_ns_per_elem: 2.5,
            cpu_skip_ns_per_probe: 40.0,
        });
        assert_eq!(cal.cpu_decode_ns_per_elem, 1.5);
        assert_eq!(cal.cpu_step_host_resident_ns(1000), 2.5 * 1000.0);
    }

    #[test]
    fn crossover_is_finite_and_clamped() {
        let cfg = DeviceConfig::test_tiny();
        let m = CostModel::from_device(&cfg, true);
        let floor = m.min_profitable_long_len();
        assert!((256..=1 << 22).contains(&floor));
        // A CPU so fast the GPU never wins hits the upper clamp.
        let never = m.with_cpu_ns_per_elem(0.0);
        assert_eq!(never.min_profitable_long_len(), 1 << 22);
    }
}
