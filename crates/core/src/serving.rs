//! Multi-query serving simulation (paper §4.4–4.5).
//!
//! The paper's end-to-end and tail-latency numbers come from streaming
//! 10 000 real queries through the system; latency includes queueing on
//! the shared resources (four CPU cores, one GPU). This module provides a
//! discrete-event simulation of exactly that: each query is a sequence of
//! *stages* pinned to a resource; stages of different queries interleave
//! on the resources in ready-time order.
//!
//! This is why Griffin's tail-latency win (Fig. 15) exceeds its mean win
//! (Fig. 14): under CPU-only execution, the rare long queries monopolize
//! a core for hundreds of milliseconds and everything queued behind them
//! stalls; Griffin offloads precisely those heavy early intersections to
//! the GPU.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use griffin_gpu_sim::VirtualNanos;
use griffin_telemetry::{SpanEvent, Timeline};

/// A serving resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// One of the CPU worker cores.
    Cpu,
    /// The single GPU.
    Gpu,
}

/// One stage of a query's execution: run for `duration` on `resource`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReq {
    pub resource: Resource,
    pub duration: VirtualNanos,
    /// Host-core time that runs *concurrently* with this stage — the CPU
    /// lane of a co-executed split intersection shadowing its GPU lane.
    /// Always `<= duration` (the engine records a split step as the max
    /// of its lanes). This core simulator ignores it; the richer
    /// `griffin-server` simulator occupies a CPU core for the shadow so
    /// co-execution's host-side pressure shows up under load.
    pub cpu_shadow: VirtualNanos,
}

impl StageReq {
    /// A stage with no concurrent host shadow (every stage except a
    /// co-executed split intersection).
    pub fn new(resource: Resource, duration: VirtualNanos) -> StageReq {
        StageReq {
            resource,
            duration,
            cpu_shadow: VirtualNanos::ZERO,
        }
    }
}

/// A query submitted to the simulation.
#[derive(Debug, Clone)]
pub struct Job {
    pub arrival: VirtualNanos,
    pub stages: Vec<StageReq>,
}

/// The discrete-event serving simulator.
pub struct ServingSim {
    /// Next-free time per CPU core (paper testbed: 4 cores).
    cpu_free: Vec<VirtualNanos>,
    /// Next-free time of the GPU.
    gpu_free: VirtualNanos,
}

impl ServingSim {
    pub fn new(cpu_workers: usize) -> ServingSim {
        assert!(cpu_workers > 0);
        ServingSim {
            cpu_free: vec![VirtualNanos::ZERO; cpu_workers],
            gpu_free: VirtualNanos::ZERO,
        }
    }

    /// Runs all jobs to completion; returns each job's total latency
    /// (completion − arrival), in job order.
    pub fn run(&mut self, jobs: &[Job]) -> Vec<VirtualNanos> {
        self.run_impl(jobs, None)
    }

    /// Like [`ServingSim::run`], additionally returning the complete
    /// per-stage schedule: one [`SpanEvent`] per executed stage with
    /// its resource lane, ready/start/end times (start − ready is queue
    /// wait). The [`Timeline`] derives per-resource utilization and
    /// queue-depth curves, and exports Chrome trace-event JSON. The
    /// schedule itself is identical to [`ServingSim::run`]'s.
    pub fn run_with_timeline(&mut self, jobs: &[Job]) -> (Vec<VirtualNanos>, Timeline) {
        let mut timeline = Timeline::default();
        let latencies = self.run_impl(jobs, Some(&mut timeline));
        (latencies, timeline)
    }

    fn run_impl(&mut self, jobs: &[Job], mut timeline: Option<&mut Timeline>) -> Vec<VirtualNanos> {
        // Event heap keyed by the time a job's next stage becomes ready.
        // Ties broken by job index for determinism.
        let mut heap: BinaryHeap<Reverse<(VirtualNanos, usize, usize)>> = BinaryHeap::new();
        for (j, job) in jobs.iter().enumerate() {
            heap.push(Reverse((job.arrival, j, 0)));
        }
        let mut completion = vec![VirtualNanos::ZERO; jobs.len()];

        while let Some(Reverse((ready, j, stage_idx))) = heap.pop() {
            let job = &jobs[j];
            if stage_idx >= job.stages.len() {
                completion[j] = ready;
                continue;
            }
            let stage = job.stages[stage_idx];
            let (resource, lane, start, end) = match stage.resource {
                Resource::Cpu => {
                    // Earliest-available core.
                    let core = self
                        .cpu_free
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &t)| t)
                        .map(|(i, _)| i)
                        .expect("at least one core");
                    let start = ready.max(self.cpu_free[core]);
                    let end = start + stage.duration;
                    self.cpu_free[core] = end;
                    ("cpu", core, start, end)
                }
                Resource::Gpu => {
                    let start = ready.max(self.gpu_free);
                    let end = start + stage.duration;
                    self.gpu_free = end;
                    ("gpu", 0, start, end)
                }
            };
            if let Some(tl) = timeline.as_deref_mut() {
                tl.push(SpanEvent {
                    resource,
                    lane,
                    job: j,
                    stage: stage_idx,
                    ready,
                    start,
                    end,
                });
            }
            heap.push(Reverse((end, j, stage_idx + 1)));
        }
        jobs.iter()
            .zip(&completion)
            .map(|(job, &c)| c - job.arrival)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    fn cpu_stage(d: u64) -> StageReq {
        StageReq::new(Resource::Cpu, ns(d))
    }

    fn gpu_stage(d: u64) -> StageReq {
        StageReq::new(Resource::Gpu, ns(d))
    }

    #[test]
    fn unloaded_latency_is_service_time() {
        let mut sim = ServingSim::new(4);
        let jobs = vec![Job {
            arrival: ns(0),
            stages: vec![cpu_stage(100), gpu_stage(50)],
        }];
        assert_eq!(sim.run(&jobs), vec![ns(150)]);
    }

    #[test]
    fn four_cores_run_four_jobs_in_parallel() {
        let mut sim = ServingSim::new(4);
        let jobs: Vec<Job> = (0..4)
            .map(|_| Job {
                arrival: ns(0),
                stages: vec![cpu_stage(100)],
            })
            .collect();
        assert_eq!(sim.run(&jobs), vec![ns(100); 4]);
    }

    #[test]
    fn fifth_job_queues_behind_cores() {
        let mut sim = ServingSim::new(4);
        let jobs: Vec<Job> = (0..5)
            .map(|_| Job {
                arrival: ns(0),
                stages: vec![cpu_stage(100)],
            })
            .collect();
        let lat = sim.run(&jobs);
        assert_eq!(lat.iter().filter(|&&l| l == ns(100)).count(), 4);
        assert_eq!(lat.iter().filter(|&&l| l == ns(200)).count(), 1);
    }

    #[test]
    fn gpu_is_a_single_server() {
        let mut sim = ServingSim::new(4);
        let jobs: Vec<Job> = (0..3)
            .map(|_| Job {
                arrival: ns(0),
                stages: vec![gpu_stage(100)],
            })
            .collect();
        let mut lat = sim.run(&jobs);
        lat.sort_unstable();
        assert_eq!(lat, vec![ns(100), ns(200), ns(300)]);
    }

    #[test]
    fn head_of_line_blocking_hurts_cpu_only_tails() {
        // One 10 ms whale then many 0.1 ms queries on one core: the tail
        // explodes. Offloading the whale's heavy stage to the GPU frees
        // the core — the Fig. 15 mechanism in miniature.
        let whale_cpu = Job {
            arrival: ns(0),
            stages: vec![cpu_stage(10_000_000)],
        };
        let whale_hybrid = Job {
            arrival: ns(0),
            stages: vec![gpu_stage(1_000_000), cpu_stage(100_000)],
        };
        let minnows = |start: u64| -> Vec<Job> {
            (0..20)
                .map(|i| Job {
                    arrival: ns(start + i * 1_000),
                    stages: vec![cpu_stage(100_000)],
                })
                .collect()
        };

        let mut cpu_jobs = vec![whale_cpu];
        cpu_jobs.extend(minnows(1_000));
        let mut sim = ServingSim::new(1);
        let cpu_lat = sim.run(&cpu_jobs);

        let mut hybrid_jobs = vec![whale_hybrid];
        hybrid_jobs.extend(minnows(1_000));
        let mut sim = ServingSim::new(1);
        let hybrid_lat = sim.run(&hybrid_jobs);

        let max_cpu = cpu_lat.iter().max().unwrap();
        let max_hybrid = hybrid_lat.iter().max().unwrap();
        assert!(
            max_hybrid.as_nanos() * 3 < max_cpu.as_nanos(),
            "hybrid tail {max_hybrid} vs cpu tail {max_cpu}"
        );
    }

    #[test]
    fn arrivals_respected() {
        let mut sim = ServingSim::new(1);
        let jobs = vec![
            Job {
                arrival: ns(0),
                stages: vec![cpu_stage(10)],
            },
            Job {
                arrival: ns(1_000),
                stages: vec![cpu_stage(10)],
            },
        ];
        // The second job arrives after the first finished: no queueing.
        assert_eq!(sim.run(&jobs), vec![ns(10), ns(10)]);
    }

    #[test]
    fn empty_stage_list_completes_instantly() {
        let mut sim = ServingSim::new(2);
        let jobs = vec![Job {
            arrival: ns(5),
            stages: vec![],
        }];
        assert_eq!(sim.run(&jobs), vec![ns(0)]);
    }
}
