//! The unified query-request type shared by the engine and the serving
//! pipeline.
//!
//! [`QueryRequest`] carries everything that describes *what* to run — the
//! query tree, the result count, the execution mode, an optional latency
//! deadline, and the pruning switch — so that [`crate::engine::Griffin`]
//! and `griffin-server`'s admission pipeline accept the same object. The
//! old positional-argument methods remain as thin shims over
//! [`crate::engine::Griffin::run`].

use griffin_gpu_sim::VirtualNanos;
use griffin_index::TermId;

use crate::engine::ExecMode;
use crate::query::Query;

/// A fully specified query.
///
/// Build one with [`QueryRequest::new`] (a conjunction of terms, the
/// original query shape) or [`QueryRequest::from_query`] (any [`Query`]
/// tree, e.g. from [`Query::parse`]), plus the chainable setters:
///
/// ```
/// use griffin::{ExecMode, QueryRequest};
/// use griffin_gpu_sim::VirtualNanos;
/// use griffin_index::TermId;
///
/// let req = QueryRequest::new(vec![TermId(3), TermId(7)])
///     .k(20)
///     .mode(ExecMode::Hybrid)
///     .pruned(true)
///     .deadline(VirtualNanos::from_millis(50));
/// assert_eq!(req.k, 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The query tree, normalized (see [`Query::normalize`]).
    pub query: Query,
    /// Number of results to return.
    pub k: usize,
    /// Which processors may execute the query.
    pub mode: ExecMode,
    /// Optional latency budget, relative to the query's arrival. The
    /// engine ignores it; the serving pipeline reports whether each
    /// query met its deadline.
    pub deadline: Option<VirtualNanos>,
    /// Enables block-max top-k pruning for conjunctive queries: the
    /// engine skips decoding term-frequency blocks whose BM25 upper
    /// bound cannot beat the current k-th score. Results are bit-exact
    /// with the unpruned path; only work and latency change. Ignored
    /// (the unpruned path runs) for non-conjunctive query trees.
    pub pruned: bool,
}

impl QueryRequest {
    /// A conjunctive request — the original query shape — with the
    /// conventional defaults: top-10, [`ExecMode::Hybrid`], no deadline,
    /// pruning off.
    pub fn new(terms: Vec<TermId>) -> QueryRequest {
        QueryRequest::from_query(Query::And(terms.into_iter().map(Query::Term).collect()))
    }

    /// A request for an arbitrary query tree (normalized on entry).
    /// Execution keeps the normalized spelling as written — the
    /// planner's f32 fold orders are spelling-stable — while
    /// [`QueryRequest::cache_signature`] canonicalizes on top, so every
    /// spelling of a query shares one result-cache key.
    pub fn from_query(query: Query) -> QueryRequest {
        QueryRequest {
            query: query.normalize(),
            k: 10,
            mode: ExecMode::Hybrid,
            deadline: None,
            pruned: false,
        }
    }

    /// The result-cache key for this request: the canonical query
    /// rendering ([`Query::canonicalize`], so semantically equal
    /// spellings collide) plus every knob that changes the answer or its
    /// modelled time — `k`, the execution mode, the pruning switch — and
    /// the index epoch, so segment churn invalidates for free. The
    /// deadline is deliberately excluded (it only labels the result,
    /// never changes it). Spellings of commutative shapes that differ
    /// only in `OR`-arm order can differ in float fold order by a ULP;
    /// conflating them is the intended cache semantics — a hit returns
    /// the bits of the spelling that executed first.
    pub fn cache_signature(&self, index_epoch: u64) -> String {
        format!(
            "{}|k{}|m{:?}|p{}|e{}",
            self.query.clone().canonicalize().cache_key(),
            self.k,
            self.mode,
            self.pruned as u8,
            index_epoch
        )
    }

    /// Sets the number of results to return.
    pub fn k(mut self, k: usize) -> QueryRequest {
        self.k = k;
        self
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> QueryRequest {
        self.mode = mode;
        self
    }

    /// Sets the latency deadline (relative to arrival).
    pub fn deadline(mut self, deadline: VirtualNanos) -> QueryRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Enables or disables block-max top-k pruning (off by default).
    pub fn pruned(mut self, on: bool) -> QueryRequest {
        self.pruned = on;
        self
    }
}

/// Why a query could not be answered.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A query word is absent from the index vocabulary. Conjunctive
    /// semantics would make the whole result empty; callers that prefer
    /// the silent-empty behaviour parse with `lenient` set (see
    /// [`crate::query::Query::parse`] and
    /// [`crate::engine::Search::lenient`]).
    UnknownTerm(String),
    /// The query text does not follow the grammar (unbalanced parens,
    /// an unterminated quote, a purely negative query, …).
    Parse(String),
    /// The query text contains no terms at all.
    EmptyQuery,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownTerm(w) => write!(f, "unknown term: {w:?}"),
            QueryError::Parse(msg) => write!(f, "query syntax error: {msg}"),
            QueryError::EmptyQuery => write!(f, "empty query"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_setters() {
        let req = QueryRequest::new(vec![TermId(1)]);
        assert_eq!(req.k, 10);
        assert_eq!(req.mode, ExecMode::Hybrid);
        assert_eq!(req.deadline, None);
        assert!(!req.pruned);

        let req = req
            .k(3)
            .mode(ExecMode::CpuOnly)
            .pruned(true)
            .deadline(VirtualNanos::from_micros(7));
        assert_eq!(req.k, 3);
        assert_eq!(req.mode, ExecMode::CpuOnly);
        assert_eq!(req.deadline, Some(VirtualNanos::from_micros(7)));
        assert!(req.pruned);
    }

    #[test]
    fn new_builds_a_normalized_conjunction() {
        let req = QueryRequest::new(vec![TermId(1), TermId(2)]);
        assert_eq!(
            req.query,
            Query::And(vec![Query::Term(TermId(1)), Query::Term(TermId(2))])
        );
        // Degenerate shapes normalize.
        assert_eq!(
            QueryRequest::new(vec![TermId(5)]).query,
            Query::Term(TermId(5))
        );
        assert_eq!(QueryRequest::new(vec![]).query, Query::Nothing);
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(QueryError::UnknownTerm("zebra".into())
            .to_string()
            .contains("zebra"));
        assert!(QueryError::Parse("missing ')'".into())
            .to_string()
            .contains("missing ')'"));
        assert!(QueryError::EmptyQuery.to_string().contains("empty"));
    }
}
