//! The unified query-request type shared by the engine and the serving
//! pipeline.
//!
//! [`QueryRequest`] carries everything that describes *what* to run — the
//! terms, the result count, the execution mode, and an optional latency
//! deadline — so that [`crate::engine::Griffin`] and `griffin-server`'s
//! admission pipeline accept the same object. The old positional-argument
//! methods remain as thin shims over [`crate::engine::Griffin::run`].

use griffin_gpu_sim::VirtualNanos;
use griffin_index::TermId;

use crate::engine::ExecMode;

/// A fully specified conjunctive query.
///
/// Build one with [`QueryRequest::new`] plus the chainable setters:
///
/// ```
/// use griffin::{ExecMode, QueryRequest};
/// use griffin_gpu_sim::VirtualNanos;
/// use griffin_index::TermId;
///
/// let req = QueryRequest::new(vec![TermId(3), TermId(7)])
///     .k(20)
///     .mode(ExecMode::Hybrid)
///     .deadline(VirtualNanos::from_millis(50));
/// assert_eq!(req.k, 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The conjunctive query terms (order does not matter; the engine
    /// plans by ascending document frequency).
    pub terms: Vec<TermId>,
    /// Number of results to return.
    pub k: usize,
    /// Which processors may execute the query.
    pub mode: ExecMode,
    /// Optional latency budget, relative to the query's arrival. The
    /// engine ignores it; the serving pipeline reports whether each
    /// query met its deadline.
    pub deadline: Option<VirtualNanos>,
}

impl QueryRequest {
    /// A request with the conventional defaults: top-10, [`ExecMode::Hybrid`],
    /// no deadline.
    pub fn new(terms: Vec<TermId>) -> QueryRequest {
        QueryRequest {
            terms,
            k: 10,
            mode: ExecMode::Hybrid,
            deadline: None,
        }
    }

    /// Sets the number of results to return.
    pub fn k(mut self, k: usize) -> QueryRequest {
        self.k = k;
        self
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> QueryRequest {
        self.mode = mode;
        self
    }

    /// Sets the latency deadline (relative to arrival).
    pub fn deadline(mut self, deadline: VirtualNanos) -> QueryRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A query word is absent from the index vocabulary. Conjunctive
    /// semantics would make the whole result empty; callers that prefer
    /// the silent-empty behaviour use
    /// [`crate::engine::Griffin::search_lenient`].
    UnknownTerm(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownTerm(w) => write!(f, "unknown term: {w:?}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_setters() {
        let req = QueryRequest::new(vec![TermId(1)]);
        assert_eq!(req.k, 10);
        assert_eq!(req.mode, ExecMode::Hybrid);
        assert_eq!(req.deadline, None);

        let req = req
            .k(3)
            .mode(ExecMode::CpuOnly)
            .deadline(VirtualNanos::from_micros(7));
        assert_eq!(req.k, 3);
        assert_eq!(req.mode, ExecMode::CpuOnly);
        assert_eq!(req.deadline, Some(VirtualNanos::from_micros(7)));
    }

    #[test]
    fn error_displays_the_word() {
        let e = QueryError::UnknownTerm("zebra".into());
        assert!(e.to_string().contains("zebra"));
    }
}
