//! The hybrid query engine: one query, two processors, per-operation
//! migration (paper Fig. 1(d)).

use std::cell::{Cell, RefCell};

use griffin_cpu::engine::Strategy;
use griffin_cpu::{setops, CpuEngine, Intermediate, PruneStats, QueryScratch, WorkCounters};
use griffin_gpu::{DeviceIntermediate, GpuEngine, GpuError, GpuStrategy};
use griffin_gpu_sim::{Gpu, StreamKind, VirtualNanos};
use griffin_index::{CorpusMeta, InvertedIndex, TermId};
use griffin_telemetry::{Telemetry, TraceEvent};

use crate::cost::CostModel;
use crate::plan::{PlanNode, Planner};
use crate::query::Query;
use crate::request::{QueryError, QueryRequest};
use crate::rescache::{CachedResult, ResultCache, ResultCacheStats, RESULT_CACHE_LOOKUP};
use crate::sched::{
    Decision, DecisionTrace, Proc, Residency, Scheduler, SplitBalancer, SplitConfig,
};

/// How a query is executed (the paper's three evaluated configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The highly optimized CPU baseline (Fig. 1(a)).
    CpuOnly,
    /// Griffin-GPU running alone (Fig. 1(b)).
    GpuOnly,
    /// Griffin: dynamic per-operation scheduling (Fig. 1(d)).
    Hybrid,
}

/// One step in a query's execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    pub op: StepOp,
    pub proc: Proc,
    pub time: VirtualNanos,
    /// Intermediate length after the step.
    pub inter_len: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOp {
    /// Decompress + score the first list.
    Init,
    /// Pairwise intersection with the i-th planned term.
    Intersect(usize),
    /// Co-executed pairwise intersection with the i-th planned term: the
    /// long list was range-partitioned and both processors ran their
    /// slice concurrently. The step's `time` is `max(cpu_lane, gpu_lane)`
    /// — the lanes overlap — so step durations still sum to the query
    /// total. On an in-split GPU fault, `gpu_lane` records the wasted
    /// device attempts; the re-run of the device's range appears as a
    /// separate [`StepOp::FaultRecovery`] step.
    SplitIntersect {
        term: usize,
        cpu_lane: VirtualNanos,
        gpu_lane: VirtualNanos,
    },
    /// Intermediate migration across PCIe.
    Migrate,
    /// Final top-k ranking (always CPU, per the Fig. 7 finding).
    TopK,
    /// Whole-query execution on a single processor. The non-hybrid modes
    /// run opaquely on one engine, so their trace is this coarse step
    /// (plus the CPU ranking step for [`ExecMode::GpuOnly`]) rather than
    /// per-operation detail.
    Exec,
    /// Recovery from a device fault: the wasted GPU attempts (including
    /// retry backoff) plus the cost of re-establishing the intermediate
    /// on the host — by draining it over PCIe when the device still
    /// answers, or by re-running the completed prefix on the CPU when it
    /// does not. Recovery time is part of the query's latency, so these
    /// steps keep the step-sum == total invariant under faults.
    FaultRecovery,
    /// One pairwise union of two sub-plan results (an `OR` arm folding
    /// in). Set operators run on the host; see [`crate::plan`].
    Union,
    /// Subtraction of a negated sub-plan's docids (`-term` / `NOT`).
    Difference,
    /// One pairwise intersection of two *sub-plan results* (a mixed
    /// `AND`), as opposed to [`StepOp::Intersect`], which intersects the
    /// running chain with a posting list.
    IntersectSets,
    /// The positional adjacency filter of a quoted phrase, run over the
    /// phrase's term-intersection result.
    PhraseCheck,
}

/// Result of a query under any mode.
#[derive(Debug, Clone)]
pub struct GriffinOutput {
    /// Top-k (docid, score), best first.
    pub topk: Vec<(u32, f32)>,
    /// End-to-end virtual latency.
    pub time: VirtualNanos,
    /// Per-operation trace. Hybrid queries record every operation;
    /// the single-processor modes record coarse [`StepOp::Exec`] (and
    /// ranking) steps. In every mode the step durations sum exactly to
    /// [`GriffinOutput::time`], which is what lets the serving pipeline
    /// replay any query's schedule stage by stage.
    pub steps: Vec<StepTrace>,
    /// Number of GPU faults observed while executing this query (every
    /// failed attempt counts, including ones that a retry then absorbed).
    /// Zero when fault injection is off or the query never touched the
    /// device.
    pub gpu_faults: u32,
    /// True when GPU fault recovery was exhausted (or the device was
    /// lost outright) and the query abandoned the device, finishing on
    /// the CPU. Transient faults that a retry absorbed do *not* set
    /// this — it is the "this device is actually unusable" signal that
    /// circuit breakers should key on, as opposed to
    /// [`gpu_faults`](Self::gpu_faults), which counts every hiccup.
    pub gpu_abandoned: bool,
    /// Block-max pruning ledger, present when the query ran with
    /// [`QueryRequest::pruned`] set and took a pruned path. `None` for
    /// unpruned runs (and for query shapes the pruned path does not
    /// cover, which fall back to unpruned execution).
    pub pruning: Option<PruneStats>,
    /// Fleet coverage accounting, present only when the answer came
    /// through a scatter–gather coordinator (see [`crate::fleet`]). A
    /// single-engine answer is always complete, hence `None`.
    pub fleet: Option<crate::fleet::FleetInfo>,
    /// True when the answer came from the query result cache: the top-k
    /// bits are exactly what execution produced when the entry was
    /// stored, and [`GriffinOutput::time`] is the (much smaller) lookup
    /// charge. Always false with the result cache disabled — the
    /// default.
    pub result_cache_hit: bool,
}

/// Where the intermediate currently lives.
enum Inter {
    Host(Intermediate),
    Device(DeviceIntermediate),
}

impl Inter {
    fn len(&self) -> usize {
        match self {
            Inter::Host(h) => h.len(),
            Inter::Device(d) => d.len,
        }
    }

    fn loc(&self) -> Proc {
        match self {
            Inter::Host(_) => Proc::Cpu,
            Inter::Device(_) => Proc::Gpu,
        }
    }
}

/// How [`Griffin::run`] reacts to GPU faults.
///
/// Transient faults (failed launches, transfer errors, allocation
/// failures) are retried in place after a bounded virtual-time backoff;
/// a fault that survives every retry — or a sticky device loss — migrates
/// the query to the CPU for the rest of its execution. Both paths keep
/// the query's results identical to a fault-free run; only its latency
/// (and its [`StepOp::FaultRecovery`] trace entries) change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per failing GPU operation before migrating to the CPU.
    pub max_retries: u32,
    /// Backoff charged to the virtual clock before the first retry.
    pub initial_backoff: VirtualNanos,
    /// Each further backoff is the previous one times this factor.
    pub backoff_multiplier: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 2,
            initial_backoff: VirtualNanos::from_micros(10),
            backoff_multiplier: 2,
        }
    }
}

/// Per-query fault bookkeeping.
#[derive(Default)]
struct FaultLog {
    /// Every failed GPU attempt, including retried ones.
    faults: u32,
    /// Latched once a fault exhausts its retries: the rest of the query
    /// runs CPU-only (a faulting device rarely deserves more traffic
    /// within the same query).
    gpu_disabled: bool,
}

/// The Griffin system: CPU engine + Griffin-GPU engine + scheduler.
pub struct Griffin<'g> {
    pub cpu: CpuEngine,
    pub gpu: GpuEngine<'g>,
    pub scheduler: Scheduler,
    /// Fault handling for GPU operations; see [`RecoveryPolicy`].
    pub recovery: RecoveryPolicy,
    device: &'g Gpu,
    telemetry: Telemetry,
    /// Whether GPU execution runs with copy/compute overlap (async
    /// streams + next-list prefetch). See [`Griffin::set_overlap`].
    overlap: bool,
    /// Feedback controller for co-executed splits: refines the cost
    /// model's split fraction from measured lane imbalance, so repeated
    /// splits converge on lanes that finish together.
    balancer: RefCell<SplitBalancer>,
    /// Per-engine decode/gather scratch, reused across every CPU
    /// intersection (buffers are cleared between operations, never
    /// shrunk, so steady-state queries stop allocating).
    scratch: RefCell<QueryScratch>,
    /// The top cache tier: whole-query results keyed on the canonical
    /// request signature. `None` (the default) disables the tier
    /// entirely; see [`Griffin::set_result_cache`].
    result_cache: RefCell<Option<ResultCache>>,
    /// Index generation stamped into every result-cache key, so bumping
    /// it ([`Griffin::set_index_epoch`]) invalidates all cached answers.
    index_epoch: Cell<u64>,
}

impl<'g> Griffin<'g> {
    pub fn new(device: &'g Gpu, meta: &CorpusMeta, block_len: usize) -> Griffin<'g> {
        let mut griffin = Griffin {
            cpu: CpuEngine::new(),
            gpu: GpuEngine::new(device, meta),
            scheduler: Scheduler::for_block_len(block_len),
            recovery: RecoveryPolicy::default(),
            device,
            telemetry: Telemetry::disabled(),
            overlap: true,
            balancer: RefCell::new(SplitBalancer::default()),
            scratch: RefCell::new(QueryScratch::default()),
            result_cache: RefCell::new(None),
            index_epoch: Cell::new(0),
        };
        griffin.set_overlap(true);
        griffin.set_coexec(true);
        griffin
    }

    /// Enables or disables copy/compute overlap for this engine's GPU
    /// work. With overlap on (the default), GPU-touching queries run in
    /// an async window — each list ships over PCIe while the previous
    /// operation's kernels execute — and the scheduler's profitable-work
    /// floor is re-derived from the pipelined cost model (see
    /// [`CostModel`]). With overlap off, execution and the floor revert
    /// to the serial model. Results are bit-exact either way.
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
        self.gpu.set_overlap(on);
        if on {
            self.scheduler
                .apply_cost_model(&CostModel::from_device(self.device.config(), true));
        } else {
            self.scheduler.min_gpu_work =
                Scheduler::for_block_len(self.scheduler.ratio_threshold).min_gpu_work;
            // The split solver and the cache-aware override must price
            // the GPU lane the same way the engine will now run it:
            // serially.
            let serial = CostModel::from_device(self.device.config(), false);
            if let Some(split) = &mut self.scheduler.split {
                split.model = serial;
            }
            self.scheduler.cache_model = Some(serial);
        }
    }

    /// Whether overlapped GPU execution is enabled.
    pub fn overlap_enabled(&self) -> bool {
        self.overlap
    }

    /// Re-derives the scheduler's cost model from measured host kernel
    /// numbers (see [`crate::cost::KernelMeasurements`] and the
    /// `exp_kernels` bench): the device-side estimates stay tied to the
    /// configured device and the current overlap mode, the CPU curves
    /// move to the measured slopes, and the profitable-work floor and
    /// split solver both pick up the recalibrated crossover.
    pub fn calibrate_cpu(&mut self, m: &crate::cost::KernelMeasurements) {
        let model = CostModel::from_device(self.device.config(), self.overlap).calibrated_from(m);
        self.scheduler.apply_cost_model(&model);
        if let Some(split) = &mut self.scheduler.split {
            split.model = model;
        }
        self.balancer.borrow_mut().reset();
    }

    /// Enables or disables CPU+GPU co-execution (on by default). With it
    /// on, intersections whose length ratio falls near the scheduler's
    /// crossover may be *split*: the long list is range-partitioned, the
    /// device and the host each intersect their slice concurrently, and
    /// the partial results concatenate into exactly the unsplit answer
    /// ([`Decision::Split`]). The split fraction is solved from both cost
    /// models and refined per query by the adaptive balancer. Results are
    /// bit-exact either way; only latency changes.
    pub fn set_coexec(&mut self, on: bool) {
        self.scheduler.split = if on {
            Some(SplitConfig::new(CostModel::from_device(
                self.device.config(),
                self.overlap,
            )))
        } else {
            None
        };
        self.balancer.borrow_mut().reset();
    }

    /// Whether co-execution splits are enabled.
    pub fn coexec_enabled(&self) -> bool {
        self.scheduler.split.is_some()
    }

    /// Attach a telemetry session. Every subsequent query records its
    /// steps and scheduler decisions; the device observer is installed
    /// so kernel launches and PCIe transfers are traced too. Recording
    /// is passive — results and virtual timings are unchanged (see the
    /// `telemetry_equivalence` integration test). Pass
    /// [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.device
            .set_observer(telemetry.device_observer(self.device.config().warp_size));
        self.telemetry = telemetry;
    }

    /// The currently attached telemetry session.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The simulated device this engine drives. Serving layers use its
    /// virtual clock (e.g. for health-breaker cooldowns) and its fault
    /// plan controls.
    pub fn device(&self) -> &'g Gpu {
        self.device
    }

    /// Enables the query result cache — the top tier of the cache
    /// hierarchy — bounded to `max_entries` results and `budget_bytes`
    /// total bytes. Passing zero for either bound disables the tier
    /// (the construction default), restoring bit- and time-identical
    /// execution for every query. See [`crate::rescache`].
    pub fn set_result_cache(&self, max_entries: usize, budget_bytes: u64) {
        *self.result_cache.borrow_mut() = if max_entries == 0 || budget_bytes == 0 {
            None
        } else {
            Some(ResultCache::new(max_entries, budget_bytes))
        };
    }

    /// Whether the query result cache is enabled.
    pub fn result_cache_enabled(&self) -> bool {
        self.result_cache.borrow().is_some()
    }

    /// Result-cache accounting, `None` while the tier is disabled.
    pub fn result_cache_stats(&self) -> Option<ResultCacheStats> {
        self.result_cache.borrow().as_ref().map(|c| c.stats())
    }

    /// Non-perturbing result-cache probe: the cached answer for `req`
    /// at the current index epoch, without LRU or hit/miss effects.
    /// This is the admission queue's stale-serve path — an overloaded
    /// server may answer a shed query from here, explicitly flagged.
    pub fn result_cache_peek(&self, req: &QueryRequest) -> Option<CachedResult> {
        let guard = self.result_cache.borrow();
        let cache = guard.as_ref()?;
        cache
            .peek(&req.cache_signature(self.index_epoch.get()))
            .cloned()
    }

    /// The index generation stamped into result-cache keys.
    pub fn index_epoch(&self) -> u64 {
        self.index_epoch.get()
    }

    /// Declares a new index generation (segment merge, document
    /// ingest, …): every cached answer and decoded list is invalidated.
    /// The result cache keys on the epoch, so old entries can never be
    /// served again; the host decoded-list tier is flushed outright
    /// (its entries alias the old postings). The device LRU keys on
    /// [`TermId`] against live postings the engine re-uploads per
    /// query, so it is flushed by the serving layer when the device
    /// copy actually goes stale.
    pub fn set_index_epoch(&self, epoch: u64) {
        self.index_epoch.set(epoch);
        if let Some(cache) = self.result_cache.borrow_mut().as_mut() {
            cache.clear();
        }
        self.cpu.clear_host_cache();
    }

    /// Where each of `term`'s copies currently lives, for cache-aware
    /// scheduling: the host decoded-list tier and the device LRU (or an
    /// in-flight prefetch) are probed without perturbing either.
    fn residency(&self, term: TermId) -> Residency {
        Residency {
            host_cached: self.cpu.host_cache_contains(term),
            device_cached: self.gpu.is_resident(term),
        }
    }

    /// Folds all three cache tiers' accounting into the attached
    /// telemetry registry under one naming scheme:
    /// `griffin_cache_{device,host,result}_{hits,misses,evictions,bytes_resident}`.
    /// Totals are process-cumulative, exported as gauges of the running
    /// value (the same race-tolerant pattern as the SIMD dispatch
    /// totals).
    pub fn export_cache_metrics(&self) {
        let dev = self.gpu.cache_stats();
        let host = self.cpu.host_cache_stats();
        let res = self.result_cache_stats().unwrap_or_default();
        let tiers: [(&str, u64, u64, u64, u64); 3] = [
            (
                "device",
                dev.hits,
                dev.misses,
                dev.evictions,
                dev.bytes_resident,
            ),
            (
                "host",
                host.hits,
                host.misses,
                host.evictions,
                host.bytes_resident,
            ),
            (
                "result",
                res.hits,
                res.misses,
                res.evictions,
                res.bytes_resident,
            ),
        ];
        self.telemetry.with(|r| {
            for (tier, hits, misses, evictions, bytes) in tiers {
                for (stat, v) in [
                    ("hits", hits),
                    ("misses", misses),
                    ("evictions", evictions),
                    ("bytes_resident", bytes),
                ] {
                    r.registry
                        .gauge_set(&format!("griffin_cache_{tier}_{stat}"), v as f64);
                }
            }
        });
    }

    /// Answers `req` from the result cache if it can: a hit returns the
    /// stored top-k bit-for-bit, charges `min(lookup, original)` virtual
    /// time as a single host step, and marks the output. `Query::Nothing`
    /// is never cached — its execution is already free.
    fn result_cache_lookup(&self, req: &QueryRequest) -> Option<GriffinOutput> {
        if req.query == Query::Nothing {
            return None;
        }
        let hit = {
            let mut guard = self.result_cache.borrow_mut();
            let cache = guard.as_mut()?;
            cache.get(&req.cache_signature(self.index_epoch.get()))?
        };
        let time = hit.time.min(RESULT_CACHE_LOOKUP);
        self.telemetry
            .counter_add("griffin_result_cache_served_total", 1);
        let steps = if time > VirtualNanos::ZERO {
            vec![StepTrace {
                op: StepOp::Exec,
                proc: Proc::Cpu,
                time,
                inter_len: hit.topk.len(),
            }]
        } else {
            Vec::new()
        };
        for s in &steps {
            self.record_step(s);
        }
        Some(GriffinOutput {
            topk: hit.topk,
            time,
            steps,
            gpu_faults: 0,
            gpu_abandoned: false,
            pruning: None,
            fleet: None,
            result_cache_hit: true,
        })
    }

    /// Stores an executed answer for future repeats of `req`.
    fn result_cache_store(&self, req: &QueryRequest, out: &GriffinOutput) {
        if req.query == Query::Nothing {
            return;
        }
        if let Some(cache) = self.result_cache.borrow_mut().as_mut() {
            cache.insert(
                req.cache_signature(self.index_epoch.get()),
                CachedResult {
                    topk: out.topk.clone(),
                    time: out.time,
                },
            );
        }
    }

    /// Record one executed step into the trace and the step-latency
    /// histograms.
    fn record_step(&self, s: &StepTrace) {
        let (op, arg) = match s.op {
            StepOp::Init => ("init", 0),
            StepOp::Intersect(i) => ("intersect", i),
            StepOp::SplitIntersect { term, .. } => ("split_intersect", term),
            StepOp::Migrate => ("migrate", 0),
            StepOp::TopK => ("topk", 0),
            StepOp::Exec => ("exec", 0),
            StepOp::FaultRecovery => ("fault_recovery", 0),
            StepOp::Union => ("union", 0),
            StepOp::Difference => ("difference", 0),
            StepOp::IntersectSets => ("intersect_sets", 0),
            StepOp::PhraseCheck => ("phrase_check", 0),
        };
        let (cpu_lane, gpu_lane) = match s.op {
            StepOp::SplitIntersect {
                cpu_lane, gpu_lane, ..
            } => (cpu_lane, gpu_lane),
            _ => (VirtualNanos::ZERO, VirtualNanos::ZERO),
        };
        let proc = s.proc.label();
        self.telemetry.record(|r| TraceEvent::Step {
            query: r.current_query(),
            op,
            arg,
            proc,
            duration: s.time,
            inter_len: s.inter_len,
            cpu_lane,
            gpu_lane,
        });
        self.telemetry.observe_duration(
            &format!("griffin_step_ns{{op=\"{op}\",proc=\"{proc}\"}}"),
            s.time,
        );
    }

    /// Record one scheduler decision.
    fn record_decision(&self, d: &DecisionTrace) {
        let chosen = d.chosen.label();
        self.telemetry.record(|r| TraceEvent::SchedDecision {
            query: r.current_query(),
            short_len: d.short_len,
            long_len: d.long_len,
            ratio: d.ratio,
            effective_threshold: d.effective_threshold,
            hysteresis_applied: d.hysteresis_applied,
            chosen,
            host_cached: d.residency.host_cached,
            device_cached: d.residency.device_cached,
            cache_flip: d.cache_flip,
        });
        self.telemetry.counter_add(
            &format!("griffin_sched_decisions_total{{proc=\"{chosen}\"}}"),
            1,
        );
        if d.cache_flip {
            // "Won by cache": the residency override changed the
            // baseline placement for this operation.
            self.telemetry.counter_add(
                &format!(
                    "griffin_sched_cache_flips_total{{from=\"{}\",to=\"{chosen}\"}}",
                    d.baseline.label()
                ),
                1,
            );
        }
    }

    /// Fold CPU work counters into the registry, along with the
    /// cumulative kernel-dispatch totals (which SIMD path each CPU
    /// kernel actually took). Dispatch totals are process-wide monotone
    /// atomics, so they are folded as gauges of the running total —
    /// race-tolerant when engines run in parallel.
    fn record_cpu_work(&self, w: &WorkCounters) {
        self.telemetry.with(|r| {
            for (name, v) in w.named() {
                if v > 0 {
                    r.registry
                        .counter_add(&format!("griffin_cpu_work_total{{counter=\"{name}\"}}"), v);
                }
            }
            for (kernel, path, total) in griffin_cpu::simd::dispatch_totals() {
                if total > 0 {
                    r.registry.gauge_set(
                        &format!(
                            "griffin_simd_dispatch_total{{kernel=\"{kernel}\",path=\"{path}\"}}"
                        ),
                        total as f64,
                    );
                }
            }
        });
    }

    /// Runs a GPU operation under the recovery policy: transient faults
    /// are retried with exponential virtual-time backoff; a fault that
    /// survives every retry (or a non-transient one) latches
    /// [`FaultLog::gpu_disabled`] and surfaces the error for the caller
    /// to migrate the work to the CPU.
    fn try_gpu<T>(
        &self,
        log: &mut FaultLog,
        mut attempt: impl FnMut() -> Result<T, GpuError>,
    ) -> Result<T, GpuError> {
        let mut backoff = self.recovery.initial_backoff;
        let mut retries = 0u32;
        loop {
            match attempt() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    log.faults += 1;
                    self.telemetry.counter_add(
                        &format!(
                            "griffin_fault_gpu_errors_total{{kind=\"{}\"}}",
                            e.kind_label()
                        ),
                        1,
                    );
                    if e.is_transient() && retries < self.recovery.max_retries {
                        retries += 1;
                        self.telemetry.counter_add("griffin_fault_retries_total", 1);
                        self.device.advance(backoff);
                        backoff = backoff * self.recovery.backoff_multiplier;
                        continue;
                    }
                    log.gpu_disabled = true;
                    return Err(e);
                }
            }
        }
    }

    /// Re-runs the completed prefix of the query plan on the CPU: the
    /// init step plus `completed` intersections. Because the CPU and GPU
    /// engines are bit-equivalent, this reproduces exactly the
    /// intermediate the device held when it failed.
    fn rematerialize(
        &self,
        index: &InvertedIndex,
        planned: &[TermId],
        completed: usize,
        w: &mut WorkCounters,
    ) -> Intermediate {
        let mut scratch = self.scratch.borrow_mut();
        let mut inter = self.cpu.init_intermediate(index, planned[0], w);
        for j in 0..completed {
            if inter.is_empty() {
                break;
            }
            inter = self.cpu.intersect_step_with(
                index,
                &inter,
                planned[j + 1],
                Strategy::Auto,
                w,
                &mut scratch,
            );
        }
        inter
    }

    /// Brings the query's intermediate back to the host after the GPU
    /// lane is abandoned. Prefers draining the intact device intermediate
    /// over PCIe (with retries); if the device no longer answers, re-runs
    /// the completed prefix on the CPU. Returns the host intermediate and
    /// the virtual time the recovery cost.
    fn salvage(
        &self,
        log: &mut FaultLog,
        index: &InvertedIndex,
        planned: &[TermId],
        completed: usize,
        dev: Option<DeviceIntermediate>,
    ) -> (Intermediate, VirtualNanos) {
        let mut spent = VirtualNanos::ZERO;
        if let Some(dev) = dev {
            let start = self.device.now();
            let drained = self.try_gpu(log, || self.gpu.download(&dev));
            dev.free(self.device);
            spent += self.device.now() - start;
            if let Ok(host) = drained {
                return (host, spent);
            }
        }
        let mut w = WorkCounters::default();
        let host = self.rematerialize(index, planned, completed, &mut w);
        self.record_cpu_work(&w);
        (host, spent + self.cpu.model.time(&w))
    }

    /// Record a completed fault recovery into the trace and telemetry.
    fn push_recovery_step(
        &self,
        steps: &mut Vec<StepTrace>,
        total: &mut VirtualNanos,
        time: VirtualNanos,
        inter_len: usize,
    ) {
        self.telemetry
            .counter_add("griffin_fault_migrations_total", 1);
        self.telemetry
            .observe_duration("griffin_fault_recovery_ns", time);
        *total += time;
        steps.push(StepTrace {
            op: StepOp::FaultRecovery,
            proc: Proc::Cpu,
            time,
            inter_len,
        });
        self.record_step(steps.last().expect("just pushed"));
    }

    /// Bracket one query's telemetry: QueryStart before, QueryEnd plus
    /// the per-mode latency histogram after.
    fn record_query<F: FnOnce() -> GriffinOutput>(
        &self,
        mode: ExecMode,
        terms: usize,
        run: F,
    ) -> GriffinOutput {
        self.telemetry.record(|r| TraceEvent::QueryStart {
            query: r.begin_query(),
            terms,
        });
        let out = run();
        let mode_label = match mode {
            ExecMode::CpuOnly => "cpu_only",
            ExecMode::GpuOnly => "gpu_only",
            ExecMode::Hybrid => "hybrid",
        };
        self.telemetry.counter_add(
            &format!("griffin_queries_total{{mode=\"{mode_label}\"}}"),
            1,
        );
        self.telemetry.observe_duration(
            &format!("griffin_query_ns{{mode=\"{mode_label}\"}}"),
            out.time,
        );
        self.telemetry.record(|r| TraceEvent::QueryEnd {
            query: r.current_query(),
            total: out.time,
            results: out.topk.len(),
        });
        out
    }

    /// Text-level convenience: parses `text` with the query grammar
    /// (juxtaposition = `AND`, `OR`, `-word` / `NOT`, `"quoted phrases"`,
    /// parentheses — see [`Query::parse`]) and runs it under `mode`. A
    /// word missing from the vocabulary is an error
    /// ([`QueryError::UnknownTerm`]); use
    /// [`Griffin::query`]`.lenient(true)` for the forgiving behaviour.
    pub fn search(
        &self,
        index: &InvertedIndex,
        text: &str,
        k: usize,
        mode: ExecMode,
    ) -> Result<GriffinOutput, QueryError> {
        self.query(index, text).k(k).mode(mode).run()
    }

    /// Starts a fluent text search:
    ///
    /// ```ignore
    /// let out = griffin.query(&idx, "gpu engine -legacy").k(10).lenient(true).run()?;
    /// ```
    ///
    /// The builder mirrors [`QueryRequest`]'s setters plus
    /// [`Search::lenient`], which controls how the parser treats
    /// out-of-vocabulary words.
    pub fn query<'a>(&'a self, index: &'a InvertedIndex, text: &'a str) -> Search<'a, 'g> {
        Search {
            griffin: self,
            index,
            text,
            k: 10,
            mode: ExecMode::Hybrid,
            deadline: None,
            pruned: false,
            lenient: false,
        }
    }

    /// Historical word-list entry point: every word missing from the
    /// vocabulary yields an empty result instead of an error.
    #[deprecated(
        since = "0.7.0",
        note = "use `query(index, text).lenient(true).run()` — the builder parses the full \
                query grammar and folds the lenient behaviour into a setter"
    )]
    pub fn search_lenient(
        &self,
        index: &InvertedIndex,
        words: &[&str],
        k: usize,
        mode: ExecMode,
    ) -> GriffinOutput {
        let query = Query::And(
            words
                .iter()
                .map(|w| match index.lookup(w) {
                    Some(t) => Query::Term(t),
                    None => Query::Nothing,
                })
                .collect(),
        );
        self.run(index, &QueryRequest::from_query(query).k(k).mode(mode))
    }

    /// Processes one conjunctive query, returning the top-k and the
    /// virtual latency under the chosen mode. Thin shim over
    /// [`Griffin::run`] for positional-argument callers.
    pub fn process_query(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
        mode: ExecMode,
    ) -> GriffinOutput {
        self.run(index, &QueryRequest::new(terms.to_vec()).k(k).mode(mode))
    }

    /// The unified entry point: executes `req` and returns the top-k,
    /// the virtual latency, and the per-step trace. The request's
    /// `deadline` is carried for the serving layer; the engine itself
    /// always runs the query to completion.
    pub fn run(&self, index: &InvertedIndex, req: &QueryRequest) -> GriffinOutput {
        // GPU-touching modes run in an async window so transfers and
        // kernels pipeline across the device's copy and compute streams.
        // Every measured span ends at a synchronization point, so step
        // durations still sum exactly to the total.
        let window = self.overlap && req.mode != ExecMode::CpuOnly;
        let was_async = self.device.async_enabled();
        if window {
            self.device.set_async(true);
        }
        let out = self.run_inner(index, req);
        if window && !was_async {
            self.device.set_async(false);
        }
        out
    }

    fn run_inner(&self, index: &InvertedIndex, req: &QueryRequest) -> GriffinOutput {
        self.record_query(req.mode, req.query.num_terms(), || {
            // Top cache tier first: a repeat of a cached request is
            // answered without touching either engine.
            if let Some(hit) = self.result_cache_lookup(req) {
                return hit;
            }
            // Plain term conjunctions — the original query shape — take
            // the fast path: the per-step AND-chain machinery (and the
            // pruned variants) unchanged. Anything else lowers through
            // the planner.
            let out = match req.query.as_term_conjunction() {
                Some(terms) if req.pruned => self.run_pruned(index, &terms, req.k, req.mode),
                Some(terms) => self.run_flat(index, &terms, req.k, req.mode),
                None => self.run_plan(index, &req.query, req.k, req.mode),
            };
            self.result_cache_store(req, &out);
            out
        })
    }

    fn run_flat(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
        mode: ExecMode,
    ) -> GriffinOutput {
        match mode {
            ExecMode::CpuOnly => {
                let out = self.cpu.process_query(index, terms, k);
                self.record_cpu_work(&out.counters);
                let steps = if out.time > VirtualNanos::ZERO {
                    vec![StepTrace {
                        op: StepOp::Exec,
                        proc: Proc::Cpu,
                        time: out.time,
                        inter_len: out.topk.len(),
                    }]
                } else {
                    Vec::new()
                };
                for s in &steps {
                    self.record_step(s);
                }
                GriffinOutput {
                    topk: out.topk,
                    time: out.time,
                    steps,
                    gpu_faults: 0,
                    gpu_abandoned: false,
                    pruning: None,
                    fleet: None,
                    result_cache_hit: false,
                }
            }
            ExecMode::GpuOnly => {
                let mut log = FaultLog::default();
                let start = self.device.now();
                match self.try_gpu(&mut log, || self.gpu.process_query(index, terms, k)) {
                    Ok(out) => {
                        let rank_time = self.cpu.model.time(&out.rank_work);
                        self.record_cpu_work(&out.rank_work);
                        let mut steps = Vec::new();
                        // Retry backoff (if any) is part of the device-side
                        // span; fold it into the Exec step so steps still
                        // sum to the total.
                        let exec_time = self.device.now() - start;
                        if exec_time > VirtualNanos::ZERO {
                            steps.push(StepTrace {
                                op: StepOp::Exec,
                                proc: Proc::Gpu,
                                time: exec_time,
                                inter_len: out.topk.len(),
                            });
                        }
                        if rank_time > VirtualNanos::ZERO {
                            steps.push(StepTrace {
                                op: StepOp::TopK,
                                proc: Proc::Cpu,
                                time: rank_time,
                                inter_len: out.topk.len(),
                            });
                        }
                        for s in &steps {
                            self.record_step(s);
                        }
                        GriffinOutput {
                            topk: out.topk,
                            time: exec_time + rank_time,
                            steps,
                            gpu_faults: log.faults,
                            gpu_abandoned: log.gpu_disabled,
                            pruning: None,
                            fleet: None,
                            result_cache_hit: false,
                        }
                    }
                    Err(_) => {
                        // The device gave up on the whole query: run it
                        // on the CPU from scratch. The wasted GPU attempts
                        // (plus backoff) become a FaultRecovery step.
                        let wasted = self.device.now() - start;
                        let mut steps = Vec::new();
                        let mut total = VirtualNanos::ZERO;
                        self.push_recovery_step(&mut steps, &mut total, wasted, 0);
                        let out = self.cpu.process_query(index, terms, k);
                        self.record_cpu_work(&out.counters);
                        if out.time > VirtualNanos::ZERO {
                            steps.push(StepTrace {
                                op: StepOp::Exec,
                                proc: Proc::Cpu,
                                time: out.time,
                                inter_len: out.topk.len(),
                            });
                            self.record_step(steps.last().expect("just pushed"));
                        }
                        GriffinOutput {
                            topk: out.topk,
                            time: total + out.time,
                            steps,
                            gpu_faults: log.faults,
                            gpu_abandoned: log.gpu_disabled,
                            pruning: None,
                            fleet: None,
                            result_cache_hit: false,
                        }
                    }
                }
            }
            ExecMode::Hybrid => self.process_hybrid(index, terms, k),
        }
    }

    /// Block-max pruned execution for term conjunctions: the CPU path
    /// defers tf decoding behind per-block BM25 upper bounds; the GPU
    /// path restricts uploads to the candidate hull's blocks. Both are
    /// bit-exact with the unpruned paths (the property suite checks
    /// this); under [`ExecMode::Hybrid`] the planner cost-picks one of
    /// the two wholesale — deferred scoring does not compose with
    /// per-step migration, so a pruned query does not migrate
    /// mid-chain.
    fn run_pruned(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
        mode: ExecMode,
    ) -> GriffinOutput {
        let place = match mode {
            ExecMode::CpuOnly => Proc::Cpu,
            ExecMode::GpuOnly => Proc::Gpu,
            ExecMode::Hybrid => {
                let mut by_df: Vec<TermId> = terms.to_vec();
                by_df.sort_unstable_by_key(|&t| index.doc_freq(t));
                match by_df.get(1) {
                    Some(&second) => {
                        let d = self.scheduler.decide_traced_resident(
                            index.doc_freq(by_df[0]),
                            index.doc_freq(second),
                            Proc::Cpu,
                            self.residency(second),
                        );
                        self.record_decision(&d);
                        // A split decision maps to the host path: pruned
                        // chains keep their intermediate host-resident.
                        d.chosen.proc()
                    }
                    None => Proc::Cpu,
                }
            }
        };
        match place {
            Proc::Cpu => self.run_pruned_cpu(index, terms, k),
            Proc::Gpu => {
                let mut log = FaultLog::default();
                let start = self.device.now();
                match self.try_gpu(&mut log, || self.gpu.process_query_pruned(index, terms, k)) {
                    Ok(p) => {
                        let rank_time = self.cpu.model.time(&p.out.rank_work);
                        self.record_cpu_work(&p.out.rank_work);
                        let exec_time = self.device.now() - start;
                        let mut steps = Vec::new();
                        if exec_time > VirtualNanos::ZERO {
                            steps.push(StepTrace {
                                op: StepOp::Exec,
                                proc: Proc::Gpu,
                                time: exec_time,
                                inter_len: p.out.topk.len(),
                            });
                        }
                        if rank_time > VirtualNanos::ZERO {
                            steps.push(StepTrace {
                                op: StepOp::TopK,
                                proc: Proc::Cpu,
                                time: rank_time,
                                inter_len: p.out.topk.len(),
                            });
                        }
                        for s in &steps {
                            self.record_step(s);
                        }
                        let matches = p.out.topk.len() as u64;
                        GriffinOutput {
                            topk: p.out.topk,
                            time: exec_time + rank_time,
                            steps,
                            gpu_faults: log.faults,
                            gpu_abandoned: log.gpu_disabled,
                            pruning: Some(PruneStats {
                                tf_blocks_total: p.blocks_total,
                                tf_blocks_decoded: p.blocks_resident,
                                candidates: matches,
                                verified: matches,
                            }),
                            fleet: None,
                            result_cache_hit: false,
                        }
                    }
                    Err(_) => {
                        // Whole-query fallback, like the unpruned GpuOnly
                        // path: wasted device attempts become a recovery
                        // step, then the CPU pruned path runs from scratch.
                        let wasted = self.device.now() - start;
                        let mut steps = Vec::new();
                        let mut total = VirtualNanos::ZERO;
                        self.push_recovery_step(&mut steps, &mut total, wasted, 0);
                        let mut out = self.run_pruned_cpu(index, terms, k);
                        out.time += total;
                        steps.append(&mut out.steps);
                        out.steps = steps;
                        out.gpu_faults += log.faults;
                        out.gpu_abandoned |= log.gpu_disabled;
                        out
                    }
                }
            }
        }
    }

    fn run_pruned_cpu(&self, index: &InvertedIndex, terms: &[TermId], k: usize) -> GriffinOutput {
        let out = self.cpu.process_query_pruned(index, terms, k);
        self.record_cpu_work(&out.counters);
        let steps = if out.time > VirtualNanos::ZERO {
            vec![StepTrace {
                op: StepOp::Exec,
                proc: Proc::Cpu,
                time: out.time,
                inter_len: out.topk.len(),
            }]
        } else {
            Vec::new()
        };
        for s in &steps {
            self.record_step(s);
        }
        GriffinOutput {
            topk: out.topk,
            time: out.time,
            steps,
            gpu_faults: 0,
            gpu_abandoned: false,
            pruning: Some(out.stats),
            fleet: None,
            result_cache_hit: false,
        }
    }

    /// Executes a non-conjunctive query by lowering it through the
    /// cost-based planner and walking the plan DAG. Chains (and the
    /// chain part of phrases) run on the processor machinery the mode
    /// allows — including the hybrid per-step scheduler with its
    /// migrations and co-executed splits — while set operators run on
    /// the host (see [`crate::plan`] for why).
    fn run_plan(
        &self,
        index: &InvertedIndex,
        query: &Query,
        k: usize,
        mode: ExecMode,
    ) -> GriffinOutput {
        let planner = Planner {
            index,
            scheduler: &self.scheduler,
        };
        let plan = planner.plan(query);
        for d in &plan.decisions {
            self.record_decision(d);
        }
        if plan.root == PlanNode::Empty {
            return GriffinOutput {
                topk: Vec::new(),
                time: VirtualNanos::ZERO,
                steps: Vec::new(),
                gpu_faults: 0,
                gpu_abandoned: false,
                pruning: None,
                fleet: None,
                result_cache_hit: false,
            };
        }
        match mode {
            ExecMode::CpuOnly => {
                // Like the flat CpuOnly path, the whole tree runs
                // opaquely on one engine: a single coarse Exec step.
                let mut w = WorkCounters::default();
                let host = {
                    let mut scratch = self.scratch.borrow_mut();
                    self.eval_plan_cpu(index, &plan.root, &mut w, &mut scratch)
                };
                let topk = griffin_cpu::topk::top_k(&host.docids, &host.scores, k, &mut w);
                let time = self.cpu.model.time(&w);
                self.record_cpu_work(&w);
                let steps = if time > VirtualNanos::ZERO {
                    vec![StepTrace {
                        op: StepOp::Exec,
                        proc: Proc::Cpu,
                        time,
                        inter_len: topk.len(),
                    }]
                } else {
                    Vec::new()
                };
                for s in &steps {
                    self.record_step(s);
                }
                GriffinOutput {
                    topk,
                    time,
                    steps,
                    gpu_faults: 0,
                    gpu_abandoned: false,
                    pruning: None,
                    fleet: None,
                    result_cache_hit: false,
                }
            }
            ExecMode::GpuOnly | ExecMode::Hybrid => {
                let mut steps = Vec::new();
                let mut total = VirtualNanos::ZERO;
                let mut log = FaultLog::default();
                let host = self
                    .eval_plan_traced(index, &plan.root, mode, &mut log, &mut steps, &mut total);
                self.gpu.drain_prefetch();
                let mut w = WorkCounters::default();
                let topk = griffin_cpu::topk::top_k(&host.docids, &host.scores, k, &mut w);
                let t_rank = self.cpu.model.time(&w);
                self.record_cpu_work(&w);
                total += t_rank;
                steps.push(StepTrace {
                    op: StepOp::TopK,
                    proc: Proc::Cpu,
                    time: t_rank,
                    inter_len: topk.len(),
                });
                self.record_step(steps.last().expect("just pushed"));
                GriffinOutput {
                    topk,
                    time: total,
                    steps,
                    gpu_faults: log.faults,
                    gpu_abandoned: log.gpu_disabled,
                    pruning: None,
                    fleet: None,
                    result_cache_hit: false,
                }
            }
        }
    }

    /// Pure-CPU plan walk: all operators accumulate into one counter set
    /// (priced as a single coarse step by the caller).
    fn eval_plan_cpu(
        &self,
        index: &InvertedIndex,
        node: &PlanNode,
        w: &mut WorkCounters,
        scratch: &mut QueryScratch,
    ) -> Intermediate {
        match node {
            PlanNode::Empty => Intermediate::default(),
            PlanNode::Chain { terms, .. } => self.cpu.eval_chain(index, terms, w, scratch),
            PlanNode::Phrase { terms, .. } => {
                let inter = self.cpu.eval_chain(index, terms, w, scratch);
                setops::phrase_filter(index, terms, &inter, w, scratch)
            }
            PlanNode::Intersect { children, .. } => {
                let mut acc = self.eval_plan_cpu(index, &children[0], w, scratch);
                for c in &children[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    let part = self.eval_plan_cpu(index, c, w, scratch);
                    acc = setops::intersect_sets(&acc, &part, w);
                }
                acc
            }
            PlanNode::Union { children, .. } => {
                let mut acc = self.eval_plan_cpu(index, &children[0], w, scratch);
                for c in &children[1..] {
                    let part = self.eval_plan_cpu(index, c, w, scratch);
                    acc = setops::union(&acc, &part, w);
                }
                acc
            }
            PlanNode::Difference { left, right, .. } => {
                let l = self.eval_plan_cpu(index, left, w, scratch);
                if l.is_empty() {
                    return l;
                }
                let r = self.eval_plan_cpu(index, right, w, scratch);
                setops::difference(&l, &r, w)
            }
        }
    }

    /// Traced plan walk for the GPU-capable modes: chains run on the
    /// device ([`ExecMode::GpuOnly`]) or through the hybrid per-step
    /// scheduler ([`ExecMode::Hybrid`]); set operators run on the host,
    /// each recorded as its own step so durations still sum to the
    /// total.
    fn eval_plan_traced(
        &self,
        index: &InvertedIndex,
        node: &PlanNode,
        mode: ExecMode,
        log: &mut FaultLog,
        steps: &mut Vec<StepTrace>,
        total: &mut VirtualNanos,
    ) -> Intermediate {
        let cpu_setop_step = |griffin: &Self,
                              op: StepOp,
                              out: &Intermediate,
                              w: WorkCounters,
                              total: &mut VirtualNanos,
                              steps: &mut Vec<StepTrace>| {
            let t = griffin.cpu.model.time(&w);
            griffin.record_cpu_work(&w);
            *total += t;
            steps.push(StepTrace {
                op,
                proc: Proc::Cpu,
                time: t,
                inter_len: out.len(),
            });
            griffin.record_step(steps.last().expect("just pushed"));
        };
        match node {
            PlanNode::Empty => Intermediate::default(),
            PlanNode::Chain { terms, .. } => {
                self.eval_chain_traced(index, terms, mode, log, steps, total)
            }
            PlanNode::Phrase { terms, .. } => {
                let inter = self.eval_chain_traced(index, terms, mode, log, steps, total);
                let mut w = WorkCounters::default();
                let out = setops::phrase_filter(
                    index,
                    terms,
                    &inter,
                    &mut w,
                    &mut self.scratch.borrow_mut(),
                );
                cpu_setop_step(self, StepOp::PhraseCheck, &out, w, total, steps);
                out
            }
            PlanNode::Intersect { children, .. } => {
                let mut acc = self.eval_plan_traced(index, &children[0], mode, log, steps, total);
                for c in &children[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    let part = self.eval_plan_traced(index, c, mode, log, steps, total);
                    let mut w = WorkCounters::default();
                    acc = setops::intersect_sets(&acc, &part, &mut w);
                    cpu_setop_step(self, StepOp::IntersectSets, &acc, w, total, steps);
                }
                acc
            }
            PlanNode::Union { children, .. } => {
                let mut acc = self.eval_plan_traced(index, &children[0], mode, log, steps, total);
                for c in &children[1..] {
                    let part = self.eval_plan_traced(index, c, mode, log, steps, total);
                    let mut w = WorkCounters::default();
                    acc = setops::union(&acc, &part, &mut w);
                    cpu_setop_step(self, StepOp::Union, &acc, w, total, steps);
                }
                acc
            }
            PlanNode::Difference { left, right, .. } => {
                let l = self.eval_plan_traced(index, left, mode, log, steps, total);
                if l.is_empty() {
                    return l;
                }
                let r = self.eval_plan_traced(index, right, mode, log, steps, total);
                let mut w = WorkCounters::default();
                let out = setops::difference(&l, &r, &mut w);
                cpu_setop_step(self, StepOp::Difference, &out, w, total, steps);
                out
            }
        }
    }

    /// One chain operator under a GPU-capable mode. GpuOnly runs the
    /// whole chain on the device (falling back to the CPU on an
    /// exhausted fault, like the flat GpuOnly path); Hybrid runs the
    /// per-step scheduler — migrations, splits, and all.
    fn eval_chain_traced(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        mode: ExecMode,
        log: &mut FaultLog,
        steps: &mut Vec<StepTrace>,
        total: &mut VirtualNanos,
    ) -> Intermediate {
        if mode == ExecMode::Hybrid {
            return self.hybrid_chain(log, index, terms, steps, total);
        }
        if !log.gpu_disabled {
            let start = self.device.now();
            let attempt = self.try_gpu(log, || self.gpu.eval_chain(index, terms));
            match attempt {
                Ok(host) => {
                    self.device.stream_sync(StreamKind::Compute);
                    self.gpu.drain_prefetch();
                    let t = self.device.now() - start;
                    *total += t;
                    steps.push(StepTrace {
                        op: StepOp::Exec,
                        proc: Proc::Gpu,
                        time: t,
                        inter_len: host.len(),
                    });
                    self.record_step(steps.last().expect("just pushed"));
                    return host;
                }
                Err(_) => {
                    self.gpu.drain_prefetch();
                    let wasted = self.device.now() - start;
                    self.push_recovery_step(steps, total, wasted, 0);
                }
            }
        }
        // CPU fallback (device disabled for this query, or the chain's
        // attempts were exhausted above).
        let mut w = WorkCounters::default();
        let host = self
            .cpu
            .eval_chain(index, terms, &mut w, &mut self.scratch.borrow_mut());
        let t = self.cpu.model.time(&w);
        self.record_cpu_work(&w);
        *total += t;
        steps.push(StepTrace {
            op: StepOp::Exec,
            proc: Proc::Cpu,
            time: t,
            inter_len: host.len(),
        });
        self.record_step(steps.last().expect("just pushed"));
        host
    }

    /// Executes one intersection as a CPU+GPU co-executed split.
    ///
    /// The long list is partitioned by docID range at a block boundary:
    /// the device takes blocks `[0, split_block)` (shipping only that
    /// slice's blocks over PCIe), the host takes `[split_block, nb)`, and
    /// the short (host-resident) intermediate is cut at the boundary
    /// docID so each lane sees exactly the short elements that can match
    /// its range. Both lanes run concurrently — the GPU lane on the
    /// device's streams, the CPU lane priced by the host cost model — and
    /// the partial results concatenate into exactly the unsplit answer
    /// (every match lands in exactly one lane, both lanes emit in docID
    /// order, and BM25 sees the full list's document frequency on both
    /// sides).
    ///
    /// The step costs `max(cpu_lane, gpu_lane)`: the lanes overlap, so
    /// step durations still sum to the query total. A GPU fault inside
    /// the split wastes only the device lane: the CPU lane's result is
    /// kept and only the device's range is re-run on the host (recorded
    /// as a [`StepOp::FaultRecovery`] step).
    #[allow(clippy::too_many_arguments)]
    fn split_intersect(
        &self,
        log: &mut FaultLog,
        index: &InvertedIndex,
        i: usize,
        term: TermId,
        host: Intermediate,
        gpu_fraction: f64,
        steps: &mut Vec<StepTrace>,
        total: &mut VirtualNanos,
    ) -> Intermediate {
        let list = index.list(term);
        let nb = list.docs.num_blocks();
        let forced = self
            .scheduler
            .split
            .as_ref()
            .is_some_and(|s| s.forced_fraction.is_some());
        let fraction = if forced {
            // Forced fractions (tests, the static-grid sweep) are taken
            // literally — no adaptive refinement.
            gpu_fraction.clamp(0.0, 1.0)
        } else {
            self.balancer.borrow().refine(gpu_fraction)
        };
        let split_block = ((fraction * nb as f64).round() as usize).min(nb);
        let boundary = if split_block < nb {
            list.docs.skips[split_block].first_docid
        } else {
            u32::MAX
        };
        let cut = host.docids.partition_point(|&d| d < boundary);
        let t0 = self.device.now();

        // GPU lane: blocks [0, split_block) against the short prefix.
        // Skipped when its range cannot match anything (an empty lane) or
        // the device is disabled for this query.
        let mut gpu_lane = VirtualNanos::ZERO;
        let mut gpu_wasted = VirtualNanos::ZERO;
        let mut gpu_part: Option<Intermediate> = None;
        let run_gpu = split_block > 0 && cut > 0 && !log.gpu_disabled;
        if run_gpu {
            let start = self.device.now();
            let attempt = self.try_gpu(log, || {
                let score_bits: Vec<u32> = host.scores[..cut].iter().map(|s| s.to_bits()).collect();
                let [docids, scores] = self
                    .device
                    .htod_packed_n([&host.docids[..cut], &score_bits])?;
                let dev_short = DeviceIntermediate {
                    len: cut,
                    docids,
                    scores: scores.cast::<f32>(),
                };
                // The range upload bypasses the list cache (a slice is
                // useless to other queries) and is freed before the lane
                // returns, fault or not.
                let postings = match self.gpu.upload_range(index, term, 0, split_block) {
                    Ok(p) => p,
                    Err(e) => {
                        dev_short.free(self.device);
                        return Err(e);
                    }
                };
                let out = self.gpu.intersect_step(
                    &dev_short,
                    &postings,
                    index.block_len(),
                    GpuStrategy::Auto,
                );
                postings.free(self.device);
                dev_short.free(self.device);
                let out = out?;
                let drained = self.gpu.download(&out);
                out.free(self.device);
                drained
            });
            match attempt {
                Ok(part) => {
                    self.device.stream_sync(StreamKind::Compute);
                    gpu_lane = self.device.now() - start;
                    gpu_part = Some(part);
                }
                Err(_) => {
                    gpu_wasted = self.device.now() - start;
                }
            }
        }

        // CPU lane: blocks [split_block, nb) against the short suffix,
        // concurrent with the device lane on the host's own core.
        let mut w = WorkCounters::default();
        let cpu_part = if cut < host.len() && split_block < nb {
            let tail = Intermediate {
                docids: host.docids[cut..].to_vec(),
                scores: host.scores[cut..].to_vec(),
            };
            Some(self.cpu.intersect_step_range(
                index,
                &tail,
                term,
                split_block..nb,
                &mut w,
                &mut self.scratch.borrow_mut(),
            ))
        } else {
            None
        };
        let cpu_lane = self.cpu.model.time(&w);
        self.record_cpu_work(&w);

        // An abandoned device lane is re-run on the host — only its
        // range; the CPU lane's work is kept.
        let gpu_failed = run_gpu && gpu_part.is_none();
        let mut recovery_time = VirtualNanos::ZERO;
        if gpu_failed {
            let head = Intermediate {
                docids: host.docids[..cut].to_vec(),
                scores: host.scores[..cut].to_vec(),
            };
            let mut wr = WorkCounters::default();
            let rerun = self.cpu.intersect_step_range(
                index,
                &head,
                term,
                0..split_block,
                &mut wr,
                &mut self.scratch.borrow_mut(),
            );
            recovery_time = self.cpu.model.time(&wr);
            self.record_cpu_work(&wr);
            gpu_part = Some(rerun);
        }

        // Concatenate: the lanes cover disjoint, ordered docID ranges.
        let mut out = gpu_part.unwrap_or_else(|| Intermediate {
            docids: Vec::new(),
            scores: Vec::new(),
        });
        if let Some(mut tail) = cpu_part {
            out.docids.append(&mut tail.docids);
            out.scores.append(&mut tail.scores);
        }

        let gpu_busy = if gpu_failed { gpu_wasted } else { gpu_lane };
        let step_time = if cpu_lane > gpu_busy {
            cpu_lane
        } else {
            gpu_busy
        };
        *total += step_time;
        steps.push(StepTrace {
            op: StepOp::SplitIntersect {
                term: i + 1,
                cpu_lane,
                gpu_lane: gpu_busy,
            },
            proc: if run_gpu { Proc::Gpu } else { Proc::Cpu },
            time: step_time,
            inter_len: out.len(),
        });
        self.record_step(steps.last().expect("just pushed"));
        if gpu_failed {
            self.push_recovery_step(steps, total, recovery_time, out.len());
        }

        // Feedback and observability. The balancer only learns from real
        // two-lane splits (zero lanes carry no signal; forced fractions
        // must stay reproducible).
        if !forced {
            self.balancer
                .borrow_mut()
                .observe(cpu_lane.as_nanos(), gpu_lane.as_nanos());
        }
        self.telemetry
            .counter_add("griffin_coexec_split_ops_total", 1);
        self.telemetry.with(|r| {
            r.registry.observe(
                "griffin_coexec_fraction_pct",
                (fraction * 100.0).round() as u64,
            );
        });
        if cpu_lane > VirtualNanos::ZERO && gpu_lane > VirtualNanos::ZERO {
            self.telemetry.gauge_set(
                "griffin_coexec_lane_imbalance",
                cpu_lane.as_nanos() as f64 / gpu_lane.as_nanos() as f64,
            );
        }
        if cpu_lane > VirtualNanos::ZERO {
            self.telemetry.record(|r| TraceEvent::CpuLane {
                query: r.current_query(),
                op: "split_intersect",
                start: t0,
                duration: cpu_lane,
            });
        }
        out
    }

    fn process_hybrid(&self, index: &InvertedIndex, terms: &[TermId], k: usize) -> GriffinOutput {
        let mut steps: Vec<StepTrace> = Vec::new();
        let mut total = VirtualNanos::ZERO;
        let mut log = FaultLog::default();
        let host = self.hybrid_chain(&mut log, index, terms, &mut steps, &mut total);
        if steps.is_empty() && host.is_empty() {
            // Nothing ran (an empty query): keep the historical
            // zero-time, zero-step output.
            return GriffinOutput {
                topk: Vec::new(),
                time: VirtualNanos::ZERO,
                steps,
                gpu_faults: log.faults,
                gpu_abandoned: log.gpu_disabled,
                pruning: None,
                fleet: None,
                result_cache_hit: false,
            };
        }
        let mut w = WorkCounters::default();
        let topk = griffin_cpu::topk::top_k(&host.docids, &host.scores, k, &mut w);
        let t_rank = self.cpu.model.time(&w);
        self.record_cpu_work(&w);
        total += t_rank;
        steps.push(StepTrace {
            op: StepOp::TopK,
            proc: Proc::Cpu,
            time: t_rank,
            inter_len: topk.len(),
        });
        self.record_step(steps.last().expect("just pushed"));
        GriffinOutput {
            topk,
            time: total,
            steps,
            gpu_faults: log.faults,
            gpu_abandoned: log.gpu_disabled,
            pruning: None,
            fleet: None,
            result_cache_hit: false,
        }
    }

    /// The per-step hybrid AND-chain — the original engine's heart,
    /// factored out so the plan executor can run it once per chain
    /// operator. Plans the terms by document frequency, then decides
    /// each pairwise intersection's processor (with migration, split
    /// co-execution, prefetch, and fault recovery), and always returns
    /// the intermediate host-resident (salvaging any device residency
    /// at the end, like final ranking always did).
    fn hybrid_chain(
        &self,
        log: &mut FaultLog,
        index: &InvertedIndex,
        terms: &[TermId],
        steps: &mut Vec<StepTrace>,
        total: &mut VirtualNanos,
    ) -> Intermediate {
        let planned = self.cpu.plan(index, terms);
        let Some((&first, rest)) = planned.split_first() else {
            return Intermediate::default();
        };

        // Initial placement: decide on the first pairwise ratio (or the
        // lone list's home if the query has a single term).
        let first_len = index.doc_freq(first);
        let initial = match rest.first() {
            Some(&second) => {
                let d = self.scheduler.decide_traced_resident(
                    first_len,
                    index.doc_freq(second),
                    Proc::Cpu,
                    self.residency(second),
                );
                self.record_decision(&d);
                // A split keeps its intermediate host-resident, so its
                // residency view places the init on the CPU.
                d.chosen.proc()
            }
            None => Proc::Cpu,
        };

        let mut inter: Inter = match initial {
            Proc::Gpu => {
                let start = self.device.now();
                let attempt = self.try_gpu(log, || {
                    let postings = self.gpu.upload(index, first)?;
                    let dev = self.gpu.init_intermediate(&postings);
                    self.gpu.release(postings);
                    dev
                });
                match attempt {
                    Ok(dev_inter) => {
                        // Pipeline: ship the next list on the copy stream
                        // while the init kernels run, if the scheduler
                        // will keep that operation on the device.
                        if let Some(&second) = rest.first() {
                            // The prediction mirrors the next iteration's
                            // real (residency-aware) decision.
                            let d = self.scheduler.decide_traced_resident(
                                dev_inter.len,
                                index.doc_freq(second),
                                Proc::Gpu,
                                self.residency(second),
                            );
                            if d.chosen.proc() == Proc::Gpu {
                                self.gpu.prefetch(index, second);
                            }
                        }
                        // End the span at a sync point so its duration
                        // covers the kernels this step scheduled.
                        self.device.stream_sync(StreamKind::Compute);
                        let t_up = self.device.now() - start;
                        *total += t_up;
                        steps.push(StepTrace {
                            op: StepOp::Init,
                            proc: Proc::Gpu,
                            time: t_up,
                            inter_len: dev_inter.len,
                        });
                        self.record_step(steps.last().expect("just pushed"));
                        Inter::Device(dev_inter)
                    }
                    Err(_) => {
                        // Nothing materialized yet: the recovery is just
                        // the wasted attempts plus a CPU init.
                        let wasted = self.device.now() - start;
                        let (host, t_rec) = self.salvage(log, index, &planned, 0, None);
                        self.push_recovery_step(steps, total, wasted + t_rec, host.len());
                        Inter::Host(host)
                    }
                }
            }
            Proc::Cpu => {
                let mut w = WorkCounters::default();
                let host = self.cpu.init_intermediate(index, first, &mut w);
                let t = self.cpu.model.time(&w);
                self.record_cpu_work(&w);
                *total += t;
                steps.push(StepTrace {
                    op: StepOp::Init,
                    proc: Proc::Cpu,
                    time: t,
                    inter_len: host.len(),
                });
                self.record_step(steps.last().expect("just pushed"));
                Inter::Host(host)
            }
        };

        for (i, &term) in rest.iter().enumerate() {
            if inter.len() == 0 {
                break;
            }
            let long_len = index.doc_freq(term);
            let decision = if log.gpu_disabled {
                Decision::Cpu
            } else {
                let d = self.scheduler.decide_traced_resident(
                    inter.len(),
                    long_len,
                    inter.loc(),
                    self.residency(term),
                );
                self.record_decision(&d);
                d.chosen
            };

            // Co-execution: run this intersection on both processors at
            // once (no migration — splits only arise for host-resident
            // intermediates, and the result comes back host-resident).
            if let Decision::Split { gpu_fraction } = decision {
                let Inter::Host(host) = inter else {
                    unreachable!("split decisions require a host-resident intermediate")
                };
                let out =
                    self.split_intersect(log, index, i, term, host, gpu_fraction, steps, total);
                inter = Inter::Host(out);
                continue;
            }
            let mut target = decision.proc();

            // Migrate the intermediate if the scheduler moved the op.
            if target != inter.loc() {
                match (inter, target) {
                    (Inter::Host(h), Proc::Gpu) => {
                        let start = self.device.now();
                        let shipped = self.try_gpu(log, || {
                            let score_bits: Vec<u32> =
                                h.scores.iter().map(|s| s.to_bits()).collect();
                            let [docids, scores] =
                                self.device.htod_packed_n([&h.docids, &score_bits])?;
                            Ok(DeviceIntermediate {
                                len: h.docids.len(),
                                docids,
                                scores: scores.cast::<f32>(),
                            })
                        });
                        // The upload ran on the copy stream; close the
                        // span on it so the migration is charged here and
                        // a later download sees the transfer retired.
                        if shipped.is_ok() {
                            self.device.stream_sync(StreamKind::Copy);
                        }
                        let t = self.device.now() - start;
                        match shipped {
                            Ok(dev) => {
                                inter = Inter::Device(dev);
                                *total += t;
                                steps.push(StepTrace {
                                    op: StepOp::Migrate,
                                    proc: target,
                                    time: t,
                                    inter_len: inter.len(),
                                });
                                self.record_step(steps.last().expect("just pushed"));
                            }
                            Err(_) => {
                                // The intermediate never left the host:
                                // stay there and run the op on the CPU.
                                self.push_recovery_step(steps, total, t, h.len());
                                inter = Inter::Host(h);
                                target = Proc::Cpu;
                            }
                        }
                    }
                    (Inter::Device(dev), Proc::Cpu) => {
                        let (host, t) = self.salvage(log, index, &planned, i, Some(dev));
                        if log.gpu_disabled {
                            self.push_recovery_step(steps, total, t, host.len());
                        } else {
                            *total += t;
                            steps.push(StepTrace {
                                op: StepOp::Migrate,
                                proc: target,
                                time: t,
                                inter_len: host.len(),
                            });
                            self.record_step(steps.last().expect("just pushed"));
                        }
                        inter = Inter::Host(host);
                    }
                    (other, _) => inter = other,
                }
            }

            let (next, t, ran_on) = match (inter, target) {
                (Inter::Device(dev), Proc::Gpu) => {
                    let start = self.device.now();
                    let attempt = self.try_gpu(log, || {
                        let postings = self.gpu.upload(index, term)?;
                        let out = self.gpu.intersect_step(
                            &dev,
                            &postings,
                            index.block_len(),
                            GpuStrategy::Auto,
                        );
                        self.gpu.release(postings);
                        out
                    });
                    match attempt {
                        Ok(out) => {
                            dev.free(self.device);
                            // Pipeline: prefetch the term after this one
                            // while this step's kernels run, if the
                            // scheduler will keep it on the device. The
                            // prediction uses the same inputs as the next
                            // iteration's real decision.
                            if let Some(&next_term) = rest.get(i + 1) {
                                if out.len > 0 {
                                    let d = self.scheduler.decide_traced_resident(
                                        out.len,
                                        index.doc_freq(next_term),
                                        Proc::Gpu,
                                        self.residency(next_term),
                                    );
                                    if d.chosen.proc() == Proc::Gpu {
                                        self.gpu.prefetch(index, next_term);
                                    }
                                }
                            }
                            self.device.stream_sync(StreamKind::Compute);
                            (Inter::Device(out), self.device.now() - start, Proc::Gpu)
                        }
                        Err(_) => {
                            // Abandon the GPU lane: drain (or re-run) the
                            // pre-step intermediate, then run this
                            // intersection on the CPU.
                            let wasted = self.device.now() - start;
                            let (host, t_rec) = self.salvage(log, index, &planned, i, Some(dev));
                            self.push_recovery_step(steps, total, wasted + t_rec, host.len());
                            let mut w = WorkCounters::default();
                            let out = self.cpu.intersect_step_with(
                                index,
                                &host,
                                term,
                                Strategy::Auto,
                                &mut w,
                                &mut self.scratch.borrow_mut(),
                            );
                            self.record_cpu_work(&w);
                            (Inter::Host(out), self.cpu.model.time(&w), Proc::Cpu)
                        }
                    }
                }
                (Inter::Host(host), Proc::Cpu) => {
                    let mut w = WorkCounters::default();
                    let out = self.cpu.intersect_step_with(
                        index,
                        &host,
                        term,
                        Strategy::Auto,
                        &mut w,
                        &mut self.scratch.borrow_mut(),
                    );
                    self.record_cpu_work(&w);
                    (Inter::Host(out), self.cpu.model.time(&w), Proc::Cpu)
                }
                _ => unreachable!("intermediate was just migrated to the target"),
            };
            inter = next;
            *total += t;
            steps.push(StepTrace {
                op: StepOp::Intersect(i + 1),
                proc: ran_on,
                time: t,
                inter_len: inter.len(),
            });
            self.record_step(steps.last().expect("just pushed"));
        }

        // A prefetch predicted for a step that never ran on the device
        // (empty intermediate, fault migration) is returned to the list
        // cache's custody; its transfer already retires in the background
        // on the copy stream.
        self.gpu.drain_prefetch();

        // The intermediate comes home: whatever follows the chain —
        // set operations, phrase checks, or final ranking — runs on
        // the CPU (Fig. 7).
        let completed = rest.len();
        match inter {
            Inter::Device(dev) => {
                let (host, t) = self.salvage(log, index, &planned, completed, Some(dev));
                if log.gpu_disabled {
                    self.push_recovery_step(steps, total, t, host.len());
                } else {
                    *total += t;
                    steps.push(StepTrace {
                        op: StepOp::Migrate,
                        proc: Proc::Cpu,
                        time: t,
                        inter_len: host.len(),
                    });
                    self.record_step(steps.last().expect("just pushed"));
                }
                host
            }
            Inter::Host(h) => h,
        }
    }
}

/// A fluent text search, created by [`Griffin::query`]. Collects the
/// same knobs as [`QueryRequest`] plus the parser's lenient flag, then
/// [`Search::run`] parses the text and executes the request.
#[must_use = "a Search does nothing until .run() is called"]
pub struct Search<'a, 'g> {
    griffin: &'a Griffin<'g>,
    index: &'a InvertedIndex,
    text: &'a str,
    k: usize,
    mode: ExecMode,
    deadline: Option<VirtualNanos>,
    pruned: bool,
    lenient: bool,
}

impl Search<'_, '_> {
    /// How many results to return (default 10).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Which execution mode to run under (default [`ExecMode::Hybrid`]).
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// A serving deadline, carried for the scheduler's benefit.
    pub fn deadline(mut self, d: VirtualNanos) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Opt into block-max top-k pruning (conjunctions only; other
    /// query shapes ignore the flag and run the plan path).
    pub fn pruned(mut self, pruned: bool) -> Self {
        self.pruned = pruned;
        self
    }

    /// Forgive out-of-vocabulary words: the parser maps them to a
    /// match-nothing leaf instead of erroring, preserving the old
    /// `search_lenient` behaviour. Syntax errors still error.
    pub fn lenient(mut self, lenient: bool) -> Self {
        self.lenient = lenient;
        self
    }

    /// Parses the text and runs the query.
    pub fn run(self) -> Result<GriffinOutput, QueryError> {
        let q = Query::parse(self.index, self.text, self.lenient)?;
        let mut req = QueryRequest::from_query(q)
            .k(self.k)
            .mode(self.mode)
            .pruned(self.pruned);
        if let Some(d) = self.deadline {
            req = req.deadline(d);
        }
        Ok(self.griffin.run(self.index, &req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;
    use griffin_gpu_sim::DeviceConfig;
    use griffin_index::InvertedIndex;
    use griffin_workload::{gen_docid_list, GapProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_index(lens: &[usize], num_docs: u32) -> InvertedIndex {
        let mut rng = StdRng::seed_from_u64(11);
        let lists: Vec<Vec<u32>> = lens
            .iter()
            .map(|&len| gen_docid_list(&mut rng, len, num_docs, GapProfile::HeavyTailed))
            .collect();
        InvertedIndex::from_docid_lists(&lists, num_docs, Codec::EliasFano, 128)
    }

    fn terms(idx: &InvertedIndex, n: usize) -> Vec<TermId> {
        (0..n)
            .map(|i| idx.lookup(&format!("t{i}")).unwrap())
            .collect()
    }

    #[test]
    fn all_modes_return_identical_results() {
        let idx = test_index(&[3_000, 20_000, 60_000], 500_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let q = terms(&idx, 3);

        let cpu = griffin.process_query(&idx, &q, 10, ExecMode::CpuOnly);
        let gpu_only = griffin.process_query(&idx, &q, 10, ExecMode::GpuOnly);
        let hybrid = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);

        let ids = |o: &GriffinOutput| o.topk.iter().map(|&(d, _)| d).collect::<Vec<_>>();
        assert_eq!(ids(&cpu), ids(&gpu_only));
        assert_eq!(ids(&cpu), ids(&hybrid));
        for ((_, a), (_, b)) in cpu.topk.iter().zip(&hybrid.topk) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!(!cpu.topk.is_empty(), "test query should match something");
    }

    #[test]
    fn hybrid_trace_records_migration_when_ratio_flips() {
        // Comparable first pair (GPU) then a hugely longer list (CPU).
        let idx = test_index(&[10_000, 60_000, 1_500_000], 4_000_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let q = terms(&idx, 3);
        let out = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);

        let procs: Vec<Proc> = out
            .steps
            .iter()
            .filter(|s| matches!(s.op, StepOp::Init | StepOp::Intersect(_)))
            .map(|s| s.proc)
            .collect();
        assert_eq!(
            procs.first(),
            Some(&Proc::Gpu),
            "starts on GPU: {:?}",
            out.steps
        );
        assert_eq!(
            procs.last(),
            Some(&Proc::Cpu),
            "finishes on CPU: {:?}",
            out.steps
        );
        assert!(
            out.steps.iter().any(|s| s.op == StepOp::Migrate),
            "expected a migration step"
        );
        // Migration time must be accounted.
        let migrate_time: VirtualNanos = out
            .steps
            .iter()
            .filter(|s| s.op == StepOp::Migrate)
            .map(|s| s.time)
            .sum();
        assert!(migrate_time.as_nanos() > 0);
    }

    #[test]
    fn device_memory_reclaimed_after_hybrid_query() {
        let idx = test_index(&[1_000, 5_000, 20_000], 200_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let q = terms(&idx, 3);
        let _ = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);
        // Only the engine-owned state (cached hot lists) may remain; all
        // per-query buffers are gone after shutdown.
        griffin.gpu.shutdown();
        assert_eq!(gpu.mem_in_use(), 0);
    }

    #[test]
    fn single_term_query_runs_on_cpu() {
        let idx = test_index(&[5_000], 100_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let q = terms(&idx, 1);
        let out = griffin.process_query(&idx, &q, 5, ExecMode::Hybrid);
        assert_eq!(out.topk.len(), 5);
        assert!(out.steps.iter().all(|s| s.proc == Proc::Cpu));
    }

    #[test]
    fn string_search_convenience() {
        let mut b = griffin_index::IndexBuilder::new(Codec::EliasFano);
        b.add_text("rust gpu simulator");
        b.add_text("rust cpu engine");
        b.add_text("gpu engine rust");
        let idx = b.build();
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let hits = griffin
            .search(&idx, "rust engine", 10, ExecMode::Hybrid)
            .expect("all words known");
        let mut docs: Vec<u32> = hits.topk.iter().map(|&(d, _)| d).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![1, 2]);
        // Unknown words are an error from `search`...
        let err = griffin
            .search(&idx, "rust nonexistent", 10, ExecMode::Hybrid)
            .unwrap_err();
        assert_eq!(err, QueryError::UnknownTerm("nonexistent".into()));
        // ...and an empty result from the lenient builder (which also
        // preserves the deprecated `search_lenient` behaviour).
        let none = griffin
            .query(&idx, "rust nonexistent")
            .lenient(true)
            .run()
            .expect("lenient parses");
        assert!(none.topk.is_empty());
        assert_eq!(none.time, VirtualNanos::ZERO);
        #[allow(deprecated)]
        let legacy = griffin.search_lenient(&idx, &["rust", "nonexistent"], 10, ExecMode::Hybrid);
        assert!(legacy.topk.is_empty());
        assert_eq!(legacy.time, VirtualNanos::ZERO);
        // The full grammar reaches the plan path: OR, negation, phrases.
        let planned = griffin
            .search(&idx, "\"rust gpu\" OR engine -cpu", 10, ExecMode::Hybrid)
            .expect("grammar parses");
        let mut docs: Vec<u32> = planned.topk.iter().map(|&(d, _)| d).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![0, 2]);
    }

    #[test]
    fn run_accepts_a_query_request() {
        let idx = test_index(&[2_000, 30_000], 500_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        // Disable the device list cache so the two runs below see
        // identical transfer costs.
        griffin.gpu.set_cache_budget(0);
        let q = terms(&idx, 2);
        let req = QueryRequest::new(q.clone())
            .k(10)
            .mode(ExecMode::Hybrid)
            .deadline(VirtualNanos::from_millis(100));
        let via_request = griffin.run(&idx, &req);
        let via_shim = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);
        assert_eq!(via_request.topk, via_shim.topk);
        assert_eq!(via_request.time, via_shim.time);
    }

    #[test]
    fn non_hybrid_modes_trace_coarse_steps_that_sum_to_total() {
        let idx = test_index(&[3_000, 20_000, 60_000], 500_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let q = terms(&idx, 3);

        let cpu = griffin.process_query(&idx, &q, 10, ExecMode::CpuOnly);
        assert_eq!(cpu.steps.len(), 1);
        assert_eq!(cpu.steps[0].op, StepOp::Exec);
        assert_eq!(cpu.steps[0].proc, Proc::Cpu);
        assert_eq!(cpu.steps[0].time, cpu.time);

        let gpu_only = griffin.process_query(&idx, &q, 10, ExecMode::GpuOnly);
        assert_eq!(gpu_only.steps.len(), 2);
        assert_eq!(gpu_only.steps[0].proc, Proc::Gpu);
        assert_eq!(gpu_only.steps[1].op, StepOp::TopK);
        assert_eq!(gpu_only.steps[1].proc, Proc::Cpu);
        let sum: VirtualNanos = gpu_only.steps.iter().map(|s| s.time).sum();
        assert_eq!(sum, gpu_only.time);
    }

    #[test]
    fn empty_query() {
        let idx = test_index(&[1_000], 50_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let out = griffin.process_query(&idx, &[], 10, ExecMode::Hybrid);
        assert!(out.topk.is_empty());
        assert_eq!(out.time, VirtualNanos::ZERO);
    }

    #[test]
    fn hybrid_survives_sticky_device_loss_at_any_point() {
        use griffin_gpu_sim::FaultPlan;
        let idx = test_index(&[3_000, 20_000, 60_000], 500_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let mut griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        // Pin the floor: this test is about the fault schedule, and the
        // pinned op indices assume these small lists reach the device.
        griffin.scheduler.min_gpu_work = 256;
        let q = terms(&idx, 3);
        let baseline = griffin.process_query(&idx, &q, 10, ExecMode::CpuOnly);
        let ids = |o: &GriffinOutput| o.topk.iter().map(|&(d, _)| d).collect::<Vec<_>>();

        for at in [0u64, 1, 3, 9, 25] {
            gpu.set_fault_plan(Some(FaultPlan::seeded(7).lose_device_at(at)));
            let out = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);
            assert_eq!(ids(&baseline), ids(&out), "loss at op {at}");
            assert!(out.gpu_faults > 0, "loss at op {at} should be observed");
            assert!(
                out.steps.iter().any(|s| s.op == StepOp::FaultRecovery),
                "loss at op {at} should leave a recovery step"
            );
            let sum: VirtualNanos = out.steps.iter().map(|s| s.time).sum();
            assert_eq!(sum, out.time, "steps must sum to total under faults");
            gpu.set_fault_plan(None);
        }
        griffin.gpu.shutdown();
        assert_eq!(gpu.mem_in_use(), 0, "faulted queries must not leak");
    }

    #[test]
    fn transient_fault_is_retried_in_place() {
        use griffin_gpu_sim::{FaultKind, FaultPlan};
        let idx = test_index(&[3_000, 20_000], 500_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let mut griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        // Pin the floor so the pinned fault op index lands on device work.
        griffin.scheduler.min_gpu_work = 256;
        let q = terms(&idx, 2);
        let baseline = griffin.process_query(&idx, &q, 10, ExecMode::CpuOnly);

        gpu.set_fault_plan(Some(
            FaultPlan::seeded(7).fail_at(2, FaultKind::KernelLaunchFailed),
        ));
        let out = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);
        gpu.set_fault_plan(None);

        assert_eq!(out.gpu_faults, 1, "exactly the pinned fault fires");
        assert_eq!(
            baseline.topk.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            out.topk.iter().map(|&(d, _)| d).collect::<Vec<_>>()
        );
        // A successful retry keeps the query on the GPU: no recovery step.
        assert!(out.steps.iter().all(|s| s.op != StepOp::FaultRecovery));
        let sum: VirtualNanos = out.steps.iter().map(|s| s.time).sum();
        assert_eq!(sum, out.time);
    }

    #[test]
    fn gpu_only_falls_back_to_cpu_on_device_loss() {
        use griffin_gpu_sim::FaultPlan;
        let idx = test_index(&[3_000, 20_000], 500_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let q = terms(&idx, 2);
        let baseline = griffin.process_query(&idx, &q, 10, ExecMode::CpuOnly);

        gpu.set_fault_plan(Some(FaultPlan::seeded(7).lose_device_at(0)));
        let out = griffin.process_query(&idx, &q, 10, ExecMode::GpuOnly);
        gpu.set_fault_plan(None);

        assert_eq!(
            baseline.topk.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            out.topk.iter().map(|&(d, _)| d).collect::<Vec<_>>()
        );
        assert!(out.gpu_faults > 0);
        assert_eq!(out.steps[0].op, StepOp::FaultRecovery);
        let sum: VirtualNanos = out.steps.iter().map(|s| s.time).sum();
        assert_eq!(sum, out.time);
    }

    #[test]
    fn fault_free_run_reports_zero_faults() {
        let idx = test_index(&[2_000, 30_000], 500_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let q = terms(&idx, 2);
        for mode in [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid] {
            let out = griffin.process_query(&idx, &q, 10, mode);
            assert_eq!(out.gpu_faults, 0);
            assert!(out.steps.iter().all(|s| s.op != StepOp::FaultRecovery));
        }
    }

    #[test]
    fn times_are_positive_and_steps_sum_to_total() {
        let idx = test_index(&[2_000, 30_000], 500_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let q = terms(&idx, 2);
        let out = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);
        let step_sum: VirtualNanos = out.steps.iter().map(|s| s.time).sum();
        assert_eq!(step_sum, out.time);
        assert!(out.time.as_nanos() > 0);
    }
}
