//! The query language: a small boolean/phrase AST and its text parser.
//!
//! [`Query`] generalizes the original conjunctive term list to a tree of
//! operators — `AND` (juxtaposition), `OR`, negation (`-word` / `NOT`),
//! and `"quoted phrases"` — that the planner ([`crate::plan`]) lowers
//! into a physical plan DAG. The scoring semantics are fixed by the AST
//! shape (see [`crate::plan`] for the exact f32 fold orders) so that
//! every execution mode, split, and fault path produces bit-identical
//! results.
//!
//! # Grammar
//!
//! ```text
//! query  := or
//! or     := and ('OR' and)*
//! and    := unary+                      -- juxtaposition; 'AND' optional
//! unary  := ('-' | 'NOT') primary | primary
//! primary:= '(' or ')' | '"' word+ '"' | word
//! ```
//!
//! `AND` binds tighter than `OR` (`a b OR c` is `(a AND b) OR c`), and a
//! negation subtracts from the other conjuncts of its `AND` group
//! (`a -b` keeps documents matching `a` but not `b`). A query with only
//! negative conjuncts is rejected: it would enumerate the whole corpus.

use griffin_index::{Dictionary, InvertedIndex, TermId};

use crate::request::QueryError;

/// A parsed query tree.
///
/// Construct one with [`Query::parse`] (text) or directly (programmatic),
/// then [`Query::normalize`] to the canonical shape the engine executes.
/// The derived `Ord` is the structural order [`Query::canonicalize`]
/// sorts commutative children by — any total order works for keying, so
/// long as it is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Query {
    /// A single term.
    Term(TermId),
    /// Conjunction: documents matching every child, scores summed.
    And(Vec<Query>),
    /// Disjunction: documents matching any child, scores summed where
    /// children overlap.
    Or(Vec<Query>),
    /// Difference: documents matching the left child but not the right.
    /// The right child only filters; it never contributes to scores.
    Not(Box<Query>, Box<Query>),
    /// The terms must appear at consecutive positions, in order. Scored
    /// as the conjunction of its terms.
    Phrase(Vec<TermId>),
    /// Matches no documents. Produced by normalization (e.g. an unknown
    /// word under lenient parsing) — never by the parser directly.
    Nothing,
}

impl Query {
    /// Canonicalizes the tree: flattens nested `And`/`Or`, unwraps
    /// single-child operators, reduces trivial phrases, and propagates
    /// [`Query::Nothing`] (a conjunction with an empty arm matches
    /// nothing; a disjunction drops empty arms; a negative empty arm is
    /// a no-op filter).
    pub fn normalize(self) -> Query {
        match self {
            Query::Term(t) => Query::Term(t),
            Query::Nothing => Query::Nothing,
            Query::Phrase(ts) => match ts.len() {
                0 => Query::Nothing,
                1 => Query::Term(ts[0]),
                _ => Query::Phrase(ts),
            },
            Query::And(children) => {
                let mut flat = Vec::with_capacity(children.len());
                for c in children {
                    match c.normalize() {
                        Query::Nothing => return Query::Nothing,
                        Query::And(gs) => flat.extend(gs),
                        g => flat.push(g),
                    }
                }
                match flat.len() {
                    0 => Query::Nothing,
                    1 => flat.pop().expect("len checked"),
                    _ => Query::And(flat),
                }
            }
            Query::Or(children) => {
                let mut flat = Vec::with_capacity(children.len());
                for c in children {
                    match c.normalize() {
                        Query::Nothing => {}
                        Query::Or(gs) => flat.extend(gs),
                        g => flat.push(g),
                    }
                }
                match flat.len() {
                    0 => Query::Nothing,
                    1 => flat.pop().expect("len checked"),
                    _ => Query::Or(flat),
                }
            }
            Query::Not(a, b) => {
                let a = a.normalize();
                let b = b.normalize();
                match (a, b) {
                    (Query::Nothing, _) => Query::Nothing,
                    (a, Query::Nothing) => a,
                    (a, b) => Query::Not(Box::new(a), Box::new(b)),
                }
            }
        }
    }

    /// Canonicalizes a *normalized* tree into the unique representative
    /// of its semantic-equivalence class, for cache keying: the children
    /// of the commutative operators (`And`, `Or`) are sorted by the
    /// derived structural order and exact duplicates dropped, then
    /// operators left with one child unwrap. Semantically equal queries —
    /// operand order flipped under `AND`/`OR`, duplicated conjuncts,
    /// redundant parenthesization — land on byte-identical trees, so one
    /// result-cache entry serves all of them. `Not` and `Phrase` are
    /// order-sensitive and keep their shape.
    ///
    /// This is a *keying* transform, applied where queries enter the
    /// serving path ([`crate::QueryRequest::from_query`]), not inside
    /// [`Query::normalize`]: the planner's f32 score folds follow AST
    /// order, so the canonical order must be fixed before execution for
    /// every spelling of a query to produce the same bits.
    pub fn canonicalize(self) -> Query {
        match self {
            Query::And(children) => {
                let mut cs: Vec<Query> = children.into_iter().map(Query::canonicalize).collect();
                cs.sort();
                cs.dedup();
                match cs.len() {
                    1 => cs.pop().expect("len checked"),
                    _ => Query::And(cs),
                }
            }
            Query::Or(children) => {
                let mut cs: Vec<Query> = children.into_iter().map(Query::canonicalize).collect();
                cs.sort();
                cs.dedup();
                match cs.len() {
                    1 => cs.pop().expect("len checked"),
                    _ => Query::Or(cs),
                }
            }
            Query::Not(a, b) => Query::Not(Box::new(a.canonicalize()), Box::new(b.canonicalize())),
            q => q,
        }
    }

    /// Renders a compact, dictionary-free, injective byte key for the
    /// result cache. Two queries share a key iff their trees are equal —
    /// call [`Query::canonicalize`] first so semantic equals collide.
    pub fn cache_key(&self) -> String {
        match self {
            Query::Term(t) => format!("t{}", t.0),
            Query::Nothing => "0".to_owned(),
            Query::Phrase(ts) => {
                let ids: Vec<String> = ts.iter().map(|t| t.0.to_string()).collect();
                format!("p({})", ids.join(","))
            }
            Query::And(cs) => {
                let parts: Vec<String> = cs.iter().map(Query::cache_key).collect();
                format!("a({})", parts.join(","))
            }
            Query::Or(cs) => {
                let parts: Vec<String> = cs.iter().map(Query::cache_key).collect();
                format!("o({})", parts.join(","))
            }
            Query::Not(a, b) => format!("n({},{})", a.cache_key(), b.cache_key()),
        }
    }

    /// If the query is a plain conjunction of terms — the original query
    /// shape — returns the terms. This is the engine's fast path: such
    /// queries run through the per-step AND-chain machinery (including
    /// co-executed splits and block-max pruning) unchanged.
    pub fn as_term_conjunction(&self) -> Option<Vec<TermId>> {
        match self {
            Query::Term(t) => Some(vec![*t]),
            Query::And(children) => {
                let mut terms = Vec::with_capacity(children.len());
                for c in children {
                    match c {
                        Query::Term(t) => terms.push(*t),
                        _ => return None,
                    }
                }
                Some(terms)
            }
            _ => None,
        }
    }

    /// Total number of term occurrences in the tree (phrase terms count
    /// individually). Used for telemetry and planner sizing.
    pub fn num_terms(&self) -> usize {
        match self {
            Query::Term(_) => 1,
            Query::Phrase(ts) => ts.len(),
            Query::And(cs) | Query::Or(cs) => cs.iter().map(Query::num_terms).sum(),
            Query::Not(a, b) => a.num_terms() + b.num_terms(),
            Query::Nothing => 0,
        }
    }

    /// Parses query text against the index vocabulary, returning the
    /// normalized AST. With `lenient` set, words missing from the
    /// vocabulary become [`Query::Nothing`] (an unmatched conjunct empties
    /// its conjunction, an unmatched disjunct drops out); without it they
    /// are a [`QueryError::UnknownTerm`]. Whitespace-only input is
    /// [`QueryError::EmptyQuery`].
    pub fn parse(index: &InvertedIndex, text: &str, lenient: bool) -> Result<Query, QueryError> {
        let tokens = tokenize(text)?;
        if tokens.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let mut p = Parser {
            index,
            lenient,
            tokens,
            pos: 0,
        };
        let q = p.or_level()?;
        if p.pos != p.tokens.len() {
            return Err(QueryError::Parse(format!(
                "unexpected {} after end of query",
                p.tokens[p.pos].describe()
            )));
        }
        Ok(q.normalize())
    }

    /// Renders the query back to parseable text using the index
    /// dictionary. For any normalized query free of [`Query::Nothing`],
    /// `parse(display(q))` yields `q` back (the round-trip property the
    /// plan test-suite checks); `Nothing` renders as a non-parseable
    /// placeholder.
    pub fn display(&self, dict: &Dictionary) -> String {
        self.render(dict, 0)
    }

    /// `min_prec`: 0 = or-level context, 1 = and-level, 2 = primary.
    fn render(&self, dict: &Dictionary, min_prec: u8) -> String {
        let wrap = |s: String, prec: u8| {
            if min_prec > prec {
                format!("({s})")
            } else {
                s
            }
        };
        match self {
            Query::Term(t) => dict.term(*t).to_owned(),
            Query::Nothing => "<nothing>".to_owned(),
            Query::Phrase(ts) => {
                let words: Vec<&str> = ts.iter().map(|&t| dict.term(t)).collect();
                format!("\"{}\"", words.join(" "))
            }
            Query::Or(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.render(dict, 1)).collect();
                wrap(parts.join(" OR "), 0)
            }
            Query::And(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.render(dict, 2)).collect();
                wrap(parts.join(" "), 1)
            }
            Query::Not(a, b) => {
                let s = format!("{} -{}", a.render(dict, 2), b.render(dict, 2));
                wrap(s, 1)
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Phrase(Vec<String>),
    Or,
    And,
    Minus,
    LParen,
    RParen,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Word(w) => format!("word {w:?}"),
            Token::Phrase(_) => "phrase".to_owned(),
            Token::Or => "'OR'".to_owned(),
            Token::And => "'AND'".to_owned(),
            Token::Minus => "'-'".to_owned(),
            Token::LParen => "'('".to_owned(),
            Token::RParen => "')'".to_owned(),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<Token>, QueryError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '-' => {
                chars.next();
                tokens.push(Token::Minus);
            }
            '"' => {
                chars.next();
                let mut inner = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    inner.push(c);
                }
                if !closed {
                    return Err(QueryError::Parse("unterminated quote".to_owned()));
                }
                let words: Vec<String> = inner.split_whitespace().map(str::to_owned).collect();
                if words.is_empty() {
                    return Err(QueryError::Parse("empty phrase".to_owned()));
                }
                tokens.push(Token::Phrase(words));
            }
            _ => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || matches!(c, '(' | ')' | '"') {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                match word.as_str() {
                    "OR" => tokens.push(Token::Or),
                    "AND" => tokens.push(Token::And),
                    "NOT" => tokens.push(Token::Minus),
                    _ => tokens.push(Token::Word(word)),
                }
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    index: &'a InvertedIndex,
    lenient: bool,
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn or_level(&mut self) -> Result<Query, QueryError> {
        let mut arms = vec![self.and_level()?];
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            arms.push(self.and_level()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().expect("len checked")
        } else {
            Query::Or(arms)
        })
    }

    fn and_level(&mut self) -> Result<Query, QueryError> {
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        loop {
            match self.peek() {
                Some(Token::And) => {
                    self.pos += 1;
                    continue;
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    negatives.push(self.primary()?);
                }
                Some(Token::Word(_) | Token::Phrase(_) | Token::LParen) => {
                    positives.push(self.primary()?);
                }
                _ => break,
            }
        }
        if positives.is_empty() {
            return Err(QueryError::Parse(if negatives.is_empty() {
                "expected a term".to_owned()
            } else {
                "purely negative query: nothing to subtract from".to_owned()
            }));
        }
        let base = if positives.len() == 1 {
            positives.pop().expect("len checked")
        } else {
            Query::And(positives)
        };
        Ok(match negatives.len() {
            0 => base,
            1 => Query::Not(
                Box::new(base),
                Box::new(negatives.pop().expect("len checked")),
            ),
            _ => Query::Not(Box::new(base), Box::new(Query::Or(negatives))),
        })
    }

    fn primary(&mut self) -> Result<Query, QueryError> {
        match self.tokens.get(self.pos).cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let q = self.or_level()?;
                if self.peek() != Some(&Token::RParen) {
                    return Err(QueryError::Parse("missing ')'".to_owned()));
                }
                self.pos += 1;
                Ok(q)
            }
            Some(Token::Word(w)) => {
                self.pos += 1;
                self.lookup(&w)
            }
            Some(Token::Phrase(words)) => {
                self.pos += 1;
                let mut terms = Vec::with_capacity(words.len());
                for w in &words {
                    match self.lookup(w)? {
                        Query::Term(t) => terms.push(t),
                        // One unknown word (lenient) empties the phrase.
                        _ => return Ok(Query::Nothing),
                    }
                }
                Ok(Query::Phrase(terms))
            }
            other => Err(QueryError::Parse(match other {
                Some(t) => format!("expected a term, found {}", t.describe()),
                None => "expected a term, found end of query".to_owned(),
            })),
        }
    }

    fn lookup(&self, word: &str) -> Result<Query, QueryError> {
        match self.index.lookup(word) {
            Some(t) => Ok(Query::Term(t)),
            None if self.lenient => Ok(Query::Nothing),
            None => Err(QueryError::UnknownTerm(word.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;
    use griffin_index::IndexBuilder;

    fn idx() -> InvertedIndex {
        let mut b = IndexBuilder::new(Codec::EliasFano);
        b.add_text("alpha beta gamma delta");
        b.add_text("beta gamma epsilon");
        b.add_text("alpha epsilon");
        b.build()
    }

    fn t(idx: &InvertedIndex, w: &str) -> TermId {
        idx.lookup(w).unwrap()
    }

    #[test]
    fn parses_juxtaposition_as_and() {
        let i = idx();
        let q = Query::parse(&i, "alpha beta", false).unwrap();
        assert_eq!(
            q,
            Query::And(vec![
                Query::Term(t(&i, "alpha")),
                Query::Term(t(&i, "beta")),
            ])
        );
        // An explicit AND keyword parses identically.
        assert_eq!(q, Query::parse(&i, "alpha AND beta", false).unwrap());
    }

    #[test]
    fn or_binds_looser_than_and() {
        let i = idx();
        let q = Query::parse(&i, "alpha beta OR gamma", false).unwrap();
        assert_eq!(
            q,
            Query::Or(vec![
                Query::And(vec![
                    Query::Term(t(&i, "alpha")),
                    Query::Term(t(&i, "beta")),
                ]),
                Query::Term(t(&i, "gamma")),
            ])
        );
    }

    #[test]
    fn negation_and_not_keyword() {
        let i = idx();
        let q = Query::parse(&i, "alpha -beta", false).unwrap();
        assert_eq!(
            q,
            Query::Not(
                Box::new(Query::Term(t(&i, "alpha"))),
                Box::new(Query::Term(t(&i, "beta"))),
            )
        );
        assert_eq!(q, Query::parse(&i, "alpha NOT beta", false).unwrap());
        // Multiple negatives union before subtracting.
        let q = Query::parse(&i, "alpha -beta -gamma", false).unwrap();
        assert_eq!(
            q,
            Query::Not(
                Box::new(Query::Term(t(&i, "alpha"))),
                Box::new(Query::Or(vec![
                    Query::Term(t(&i, "beta")),
                    Query::Term(t(&i, "gamma")),
                ])),
            )
        );
    }

    #[test]
    fn phrases_and_parens() {
        let i = idx();
        let q = Query::parse(&i, "\"beta gamma\" (alpha OR epsilon)", false).unwrap();
        assert_eq!(
            q,
            Query::And(vec![
                Query::Phrase(vec![t(&i, "beta"), t(&i, "gamma")]),
                Query::Or(vec![
                    Query::Term(t(&i, "alpha")),
                    Query::Term(t(&i, "epsilon")),
                ]),
            ])
        );
    }

    #[test]
    fn parse_errors() {
        let i = idx();
        assert_eq!(Query::parse(&i, "   ", false), Err(QueryError::EmptyQuery));
        assert!(matches!(
            Query::parse(&i, "-alpha", false),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            Query::parse(&i, "(alpha", false),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            Query::parse(&i, "\"alpha beta", false),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            Query::parse(&i, "alpha) beta", false),
            Err(QueryError::Parse(_))
        ));
        assert_eq!(
            Query::parse(&i, "alpha zeta", false),
            Err(QueryError::UnknownTerm("zeta".to_owned()))
        );
    }

    #[test]
    fn lenient_maps_unknown_words_to_nothing() {
        let i = idx();
        // An unknown conjunct empties the conjunction...
        assert_eq!(
            Query::parse(&i, "alpha zeta", true).unwrap(),
            Query::Nothing
        );
        // ...an unknown disjunct drops out...
        assert_eq!(
            Query::parse(&i, "alpha OR zeta", true).unwrap(),
            Query::Term(t(&i, "alpha"))
        );
        // ...an unknown negative is a no-op filter...
        assert_eq!(
            Query::parse(&i, "alpha -zeta", true).unwrap(),
            Query::Term(t(&i, "alpha"))
        );
        // ...and an unknown phrase word empties the phrase.
        assert_eq!(
            Query::parse(&i, "\"alpha zeta\" OR beta", true).unwrap(),
            Query::Term(t(&i, "beta"))
        );
    }

    #[test]
    fn normalize_flattens_and_reduces() {
        let a = Query::Term(TermId(0));
        let b = Query::Term(TermId(1));
        let c = Query::Term(TermId(2));
        let nested = Query::And(vec![Query::And(vec![a.clone(), b.clone()]), c.clone()]);
        assert_eq!(
            nested.normalize(),
            Query::And(vec![a.clone(), b.clone(), c.clone()])
        );
        assert_eq!(Query::Or(vec![a.clone()]).normalize(), a.clone());
        assert_eq!(Query::Phrase(vec![TermId(0)]).normalize(), a.clone());
        assert_eq!(Query::And(vec![]).normalize(), Query::Nothing);
        assert_eq!(
            Query::Not(Box::new(a.clone()), Box::new(Query::Nothing)).normalize(),
            a.clone()
        );
        assert_eq!(
            Query::Not(Box::new(Query::Nothing), Box::new(a.clone())).normalize(),
            Query::Nothing
        );
    }

    #[test]
    fn as_term_conjunction_detects_the_fast_path() {
        let i = idx();
        let q = Query::parse(&i, "alpha beta gamma", false).unwrap();
        assert_eq!(
            q.as_term_conjunction(),
            Some(vec![t(&i, "alpha"), t(&i, "beta"), t(&i, "gamma")])
        );
        assert_eq!(
            Query::parse(&i, "alpha", false)
                .unwrap()
                .as_term_conjunction(),
            Some(vec![t(&i, "alpha")])
        );
        assert!(Query::parse(&i, "alpha OR beta", false)
            .unwrap()
            .as_term_conjunction()
            .is_none());
        assert!(Query::parse(&i, "\"alpha beta\"", false)
            .unwrap()
            .as_term_conjunction()
            .is_none());
    }

    #[test]
    fn semantically_equal_queries_share_canonical_keys() {
        let i = idx();
        // Each group: every spelling must canonicalize to byte-identical
        // trees and cache keys.
        let groups: &[&[&str]] = &[
            // Commutative operand order under AND (and the explicit keyword).
            &["alpha beta", "beta alpha", "beta AND alpha"],
            // ...and under OR.
            &["alpha OR beta", "beta OR alpha"],
            // Duplicate conjuncts collapse.
            &["alpha alpha beta", "alpha beta", "beta alpha alpha"],
            // Duplicate disjuncts collapse.
            &["alpha OR beta OR alpha", "beta OR alpha"],
            // Nested parens flatten to the same canonical form.
            &["((alpha)) ((beta))", "(alpha beta)", "alpha beta"],
            &["alpha (beta OR gamma)", "(gamma OR beta) alpha"],
            // Order-sensitive shapes must NOT be conflated: phrase and
            // negation keep their operand order (checked below).
        ];
        for group in groups {
            let canon: Vec<Query> = group
                .iter()
                .map(|s| Query::parse(&i, s, false).unwrap().canonicalize())
                .collect();
            let keys: Vec<String> = canon.iter().map(Query::cache_key).collect();
            for (c, k) in canon.iter().zip(&keys).skip(1) {
                assert_eq!(c, &canon[0], "group {group:?} diverged structurally");
                assert_eq!(k, &keys[0], "group {group:?} diverged in key");
            }
        }
        // Phrases are positional: reversing the words is a different query.
        let p1 = Query::parse(&i, "\"beta gamma\"", false)
            .unwrap()
            .canonicalize();
        let p2 = Query::parse(&i, "\"gamma beta\"", false)
            .unwrap()
            .canonicalize();
        assert_ne!(p1.cache_key(), p2.cache_key());
        // Negation is asymmetric.
        let n1 = Query::parse(&i, "alpha -beta", false)
            .unwrap()
            .canonicalize();
        let n2 = Query::parse(&i, "beta -alpha", false)
            .unwrap()
            .canonicalize();
        assert_ne!(n1.cache_key(), n2.cache_key());
        // The key is injective on distinct canonical trees even when
        // term-id digit strings could run together.
        let a = Query::And(vec![Query::Term(TermId(1)), Query::Term(TermId(23))]);
        let b = Query::And(vec![Query::Term(TermId(12)), Query::Term(TermId(3))]);
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn display_round_trips() {
        let i = idx();
        for text in [
            "alpha beta",
            "alpha OR beta",
            "alpha beta OR gamma delta",
            "alpha -beta",
            "alpha -(beta OR gamma)",
            "\"beta gamma\" (alpha OR epsilon)",
            "(alpha OR beta) -\"beta gamma\"",
            "alpha (beta OR gamma) -delta",
        ] {
            let q = Query::parse(&i, text, false).unwrap();
            let shown = q.display(i.dictionary());
            let again = Query::parse(&i, &shown, false).unwrap();
            assert_eq!(q, again, "{text:?} displayed as {shown:?}");
        }
    }
}
