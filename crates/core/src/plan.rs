//! The cost-based planner: lowers a [`Query`] AST into a physical plan
//! DAG with a per-operator processor decision.
//!
//! The original engine made per-step CPU/GPU/Split decisions along one
//! AND-chain. The planner generalizes that to arbitrary operator trees:
//! every AND-chain of terms becomes a [`PlanNode::Chain`] whose placement
//! the [`Scheduler`] decides from the chain's two shortest lists (the
//! same signal the per-step machinery refines at run time), and every
//! union, difference, and phrase check becomes its own costed operator
//! node. Set operations run on the host: the device exposes no set-op
//! kernels, and for the intermediate sizes the planner estimates, a
//! device set-op would pay two PCIe round-trips that dwarf the
//! `~cpu_ns_per_elem` host merge — the same Fig. 7 reasoning that keeps
//! final ranking on the CPU.
//!
//! # Scoring semantics (the bit-exactness contract)
//!
//! f32 addition is not associative, so the fold order *is* the result.
//! Every execution mode follows the orders fixed here, and the
//! brute-force reference in `tests/plan_properties.rs` mirrors them:
//!
//! * **Chain** (`AND` of terms): terms sorted by ascending document
//!   frequency (stable — ties keep AST order); the score accumulates one
//!   BM25 contribution per intersection step, in that planned order.
//! * **Phrase**: scored exactly like the chain of its terms (df-sorted),
//!   then filtered by the positional check (which never changes scores).
//! * **And** (mixed): the term children form one chain, evaluated first;
//!   each complex child then intersects in AST order, adding its score
//!   (`chain + c1 + c2 + …`).
//! * **Or**: children union left-to-right in AST order; where arms
//!   overlap the scores add (`a + b`, left operand first).
//! * **Not**: keeps the left child's docids and scores unchanged.

use griffin_index::{InvertedIndex, TermId};

use crate::query::Query;
use crate::sched::{Decision, DecisionTrace, Scheduler};

/// One operator of the physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// An AND-chain of terms, df-sorted, with the planner's processor
    /// decision for the whole chain. Under [`crate::ExecMode::Hybrid`]
    /// the decision seeds the chain's per-step scheduling, which may
    /// migrate or split individual intersections exactly as the original
    /// engine did.
    Chain {
        terms: Vec<TermId>,
        place: Decision,
        est: usize,
    },
    /// A phrase: its term chain (placed like [`PlanNode::Chain`])
    /// followed by the host-side positional adjacency check (the
    /// positions side-file is host-resident).
    Phrase {
        terms: Vec<TermId>,
        place: Decision,
        est: usize,
    },
    /// Intersection of sub-plans (a mixed AND). Children keep AST order;
    /// the set intersection itself runs on the host.
    Intersect { children: Vec<PlanNode>, est: usize },
    /// Union of sub-plans, folded left-to-right on the host.
    Union { children: Vec<PlanNode>, est: usize },
    /// Left sub-plan minus right sub-plan, on the host.
    Difference {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        est: usize,
    },
    /// Matches nothing.
    Empty,
}

impl PlanNode {
    /// The planner's cardinality estimate (an upper bound).
    pub fn est(&self) -> usize {
        match self {
            PlanNode::Chain { est, .. }
            | PlanNode::Phrase { est, .. }
            | PlanNode::Intersect { est, .. }
            | PlanNode::Union { est, .. }
            | PlanNode::Difference { est, .. } => *est,
            PlanNode::Empty => 0,
        }
    }
}

/// A lowered query: the operator DAG plus the scheduler traces behind
/// each chain-placement decision (recorded into telemetry by the engine).
#[derive(Debug, Clone)]
pub struct Plan {
    pub root: PlanNode,
    pub decisions: Vec<DecisionTrace>,
}

/// Lowers normalized [`Query`] trees against one index + scheduler pair.
pub struct Planner<'a> {
    pub index: &'a InvertedIndex,
    pub scheduler: &'a Scheduler,
}

impl Planner<'_> {
    /// Plans a normalized query. Cardinality estimates: a term is its
    /// document frequency; an intersection is its smallest child; a
    /// union is the clipped sum; a difference is its left child.
    pub fn plan(&self, q: &Query) -> Plan {
        let mut decisions = Vec::new();
        let root = self.lower(q, &mut decisions);
        Plan { root, decisions }
    }

    fn lower(&self, q: &Query, decisions: &mut Vec<DecisionTrace>) -> PlanNode {
        match q {
            Query::Nothing => PlanNode::Empty,
            Query::Term(t) => self.chain(vec![*t], decisions),
            Query::Phrase(ts) => {
                // The phrase keeps its ORIGINAL term order — the
                // positional check is order-sensitive; the chain
                // executors df-sort internally for the intersections.
                let mut dfs: Vec<usize> = ts.iter().map(|&t| self.index.doc_freq(t)).collect();
                dfs.sort_unstable();
                let est = dfs.first().copied().unwrap_or(0);
                let place = match dfs.get(1) {
                    Some(&second) => {
                        let d = self
                            .scheduler
                            .decide_traced(est, second, crate::sched::Proc::Cpu);
                        let chosen = d.chosen;
                        decisions.push(d);
                        chosen
                    }
                    None => Decision::Cpu,
                };
                PlanNode::Phrase {
                    terms: ts.clone(),
                    place,
                    est,
                }
            }
            Query::And(children) => {
                let mut terms = Vec::new();
                let mut complex = Vec::new();
                for c in children {
                    match c {
                        Query::Term(t) => terms.push(*t),
                        other => complex.push(other),
                    }
                }
                let mut nodes = Vec::with_capacity(1 + complex.len());
                if !terms.is_empty() {
                    nodes.push(self.chain(terms, decisions));
                }
                for c in complex {
                    nodes.push(self.lower(c, decisions));
                }
                match nodes.len() {
                    0 => PlanNode::Empty,
                    1 => nodes.pop().expect("len checked"),
                    _ => {
                        let est = nodes.iter().map(PlanNode::est).min().unwrap_or(0);
                        PlanNode::Intersect {
                            children: nodes,
                            est,
                        }
                    }
                }
            }
            Query::Or(children) => {
                let nodes: Vec<PlanNode> =
                    children.iter().map(|c| self.lower(c, decisions)).collect();
                let est = nodes
                    .iter()
                    .map(PlanNode::est)
                    .sum::<usize>()
                    .min(self.index.num_docs() as usize);
                PlanNode::Union {
                    children: nodes,
                    est,
                }
            }
            Query::Not(a, b) => {
                let left = self.lower(a, decisions);
                let right = self.lower(b, decisions);
                let est = left.est();
                PlanNode::Difference {
                    left: Box::new(left),
                    right: Box::new(right),
                    est,
                }
            }
        }
    }

    /// Builds a chain node: df-sorts the terms (stable, like the CPU
    /// engine's own plan), estimates the intersection by its shortest
    /// list, and asks the scheduler for the chain's starting placement
    /// from the first pairwise ratio — the same inputs the hybrid
    /// engine's initial-placement decision uses.
    fn chain(&self, mut terms: Vec<TermId>, decisions: &mut Vec<DecisionTrace>) -> PlanNode {
        if terms.is_empty() {
            return PlanNode::Empty;
        }
        // scoring_df: the chain order fixes the score fold order, so a
        // shard view must sort by the same global dfs as the unsharded
        // index. The cost estimates below stay on local list lengths —
        // they steer placement and latency, never results.
        terms.sort_by_key(|&t| self.index.scoring_df(t));
        let est = self.index.doc_freq(terms[0]);
        let place = match terms.get(1) {
            Some(&second) => {
                let d = self.scheduler.decide_traced(
                    est,
                    self.index.doc_freq(second),
                    crate::sched::Proc::Cpu,
                );
                let chosen = d.chosen;
                decisions.push(d);
                chosen
            }
            None => Decision::Cpu,
        };
        PlanNode::Chain { terms, place, est }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;
    use griffin_index::InvertedIndex;

    fn idx() -> InvertedIndex {
        // t0: 4 docs, t1: 3 docs, t2: 2 docs.
        let lists: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3], vec![0, 2, 4], vec![1, 3]];
        InvertedIndex::from_docid_lists(&lists, 10, Codec::EliasFano, 128)
    }

    fn tid(i: &InvertedIndex, n: usize) -> TermId {
        i.lookup(&format!("t{n}")).unwrap()
    }

    #[test]
    fn chains_are_df_sorted_and_estimated_by_shortest() {
        let i = idx();
        let sched = Scheduler::for_block_len(128);
        let planner = Planner {
            index: &i,
            scheduler: &sched,
        };
        let q = Query::And(vec![
            Query::Term(tid(&i, 0)),
            Query::Term(tid(&i, 2)),
            Query::Term(tid(&i, 1)),
        ])
        .normalize();
        let plan = planner.plan(&q);
        match &plan.root {
            PlanNode::Chain { terms, est, .. } => {
                assert_eq!(terms, &[tid(&i, 2), tid(&i, 1), tid(&i, 0)]);
                assert_eq!(*est, 2);
            }
            other => panic!("expected a chain, got {other:?}"),
        }
        assert_eq!(plan.decisions.len(), 1, "one placement decision per chain");
    }

    #[test]
    fn mixed_and_keeps_ast_order_after_the_chain() {
        let i = idx();
        let sched = Scheduler::for_block_len(128);
        let planner = Planner {
            index: &i,
            scheduler: &sched,
        };
        let or = Query::Or(vec![Query::Term(tid(&i, 1)), Query::Term(tid(&i, 2))]);
        let q = Query::And(vec![or.clone(), Query::Term(tid(&i, 0))]).normalize();
        let plan = planner.plan(&q);
        match &plan.root {
            PlanNode::Intersect { children, est } => {
                assert!(matches!(children[0], PlanNode::Chain { .. }));
                assert!(matches!(children[1], PlanNode::Union { .. }));
                // est = min(chain est 4, union est min(3+2, 10) = 5) = 4.
                assert_eq!(*est, 4);
            }
            other => panic!("expected an intersect, got {other:?}"),
        }
    }

    #[test]
    fn union_difference_and_phrase_estimates() {
        let i = idx();
        let sched = Scheduler::for_block_len(128);
        let planner = Planner {
            index: &i,
            scheduler: &sched,
        };
        let q = Query::Not(
            Box::new(Query::Or(vec![
                Query::Term(tid(&i, 0)),
                Query::Term(tid(&i, 1)),
            ])),
            Box::new(Query::Phrase(vec![tid(&i, 1), tid(&i, 2)])),
        )
        .normalize();
        let plan = planner.plan(&q);
        match &plan.root {
            PlanNode::Difference { left, right, est } => {
                assert_eq!(left.est(), 7, "clipped sum of the union arms");
                assert_eq!(*est, 7, "difference estimated by its left side");
                match right.as_ref() {
                    PlanNode::Phrase { terms, est, .. } => {
                        // Phrase order is preserved (not df-sorted).
                        assert_eq!(terms, &[tid(&i, 1), tid(&i, 2)]);
                        assert_eq!(*est, 2);
                    }
                    other => panic!("expected a phrase, got {other:?}"),
                }
            }
            other => panic!("expected a difference, got {other:?}"),
        }
    }

    #[test]
    fn nothing_lowers_to_empty() {
        let i = idx();
        let sched = Scheduler::for_block_len(128);
        let planner = Planner {
            index: &i,
            scheduler: &sched,
        };
        assert_eq!(planner.plan(&Query::Nothing).root, PlanNode::Empty);
    }
}
