//! The dynamic intra-query scheduler (paper §3.2).
//!
//! Before each pairwise intersection, Griffin compares the long list's
//! length to the intermediate result's length. If the ratio is below the
//! crossover threshold the operation runs on the GPU, otherwise on the
//! CPU. The threshold defaults to the compression block size: the paper
//! proves that at ratio = block size the short list has fewer elements
//! than the long list has blocks, so skippable blocks are guaranteed to
//! exist — exactly when the CPU's skip search starts beating brute-force
//! parallel decompression ("the value of 128 is closely related to the
//! fact that we compress the list in 128-element blocks").
//!
//! The placement-aware refinement adds hysteresis: when the intermediate
//! already lives on the device, a borderline operation stays there, since
//! migrating costs a PCIe round trip that a marginal CPU win cannot repay.

/// Which processor an operation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proc {
    Cpu,
    Gpu,
}

impl Proc {
    /// Stable lowercase label, used as a metric/trace dimension.
    pub fn label(self) -> &'static str {
        match self {
            Proc::Cpu => "cpu",
            Proc::Gpu => "gpu",
        }
    }
}

/// Everything that went into (and came out of) one scheduling decision,
/// surfaced for telemetry and the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    pub short_len: usize,
    pub long_len: usize,
    /// `long_len / short_len` (0 when the intermediate is empty).
    pub ratio: f64,
    /// The threshold the ratio was compared against, after any
    /// placement-aware hysteresis.
    pub effective_threshold: f64,
    /// Whether hysteresis inflated the threshold for this decision.
    pub hysteresis_applied: bool,
    pub chosen: Proc,
}

/// The ratio-crossover scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// GPU/CPU crossover ratio (paper default: the block size, 128).
    pub ratio_threshold: usize,
    /// Hysteresis: borderline ops stay on the processor holding the data.
    pub placement_aware: bool,
    /// Multiplier applied to the threshold when the data is already
    /// device-resident (only with `placement_aware`).
    pub hysteresis: f64,
    /// Operations whose long list is shorter than this always run on the
    /// CPU: tiny kernels cannot amortize launch/allocation/PCIe overheads
    /// ("these costs occur just once, so running larger, more complex
    /// query operations can amortize them" — paper §2.3). The paper's
    /// crossover study itself only measures lists of 1M–2M elements.
    pub min_gpu_work: usize,
}

impl Scheduler {
    /// Scheduler for an index compressed in `block_len`-element blocks.
    pub fn for_block_len(block_len: usize) -> Scheduler {
        Scheduler {
            ratio_threshold: block_len,
            placement_aware: true,
            hysteresis: 2.0,
            min_gpu_work: 8_192,
        }
    }

    /// A paper-faithful static scheduler (no placement awareness), for the
    /// ablation study.
    pub fn paper_static(block_len: usize) -> Scheduler {
        Scheduler {
            ratio_threshold: block_len,
            placement_aware: false,
            hysteresis: 1.0,
            min_gpu_work: 0,
        }
    }

    /// Re-derives the `min_gpu_work` floor from an analytic cost model,
    /// making the planner overlap-aware: with copy/compute overlap the
    /// per-step transfer hides behind compute, smaller operations become
    /// profitable on the device, and the crossover moves down (see
    /// [`crate::cost::CostModel`]). The ratio threshold itself is
    /// untouched — it encodes the block-skipping argument, which overlap
    /// does not change.
    pub fn apply_cost_model(&mut self, model: &crate::cost::CostModel) {
        self.min_gpu_work = model.min_profitable_long_len();
    }

    /// Decides where the next pairwise intersection should run.
    ///
    /// * `short_len` — current intermediate length (or the shortest list
    ///   for the first operation);
    /// * `long_len` — the next list's length;
    /// * `current` — where the intermediate currently lives.
    pub fn decide(&self, short_len: usize, long_len: usize, current: Proc) -> Proc {
        self.decide_traced(short_len, long_len, current).chosen
    }

    /// [`Scheduler::decide`], returning the full [`Decision`] record
    /// (inputs, ratio, effective threshold, hysteresis) for telemetry.
    pub fn decide_traced(&self, short_len: usize, long_len: usize, current: Proc) -> Decision {
        let hysteresis_applied = self.placement_aware && current == Proc::Gpu;
        let mut threshold = self.ratio_threshold as f64;
        if hysteresis_applied {
            threshold *= self.hysteresis;
        }
        let (ratio, chosen) = if short_len == 0 {
            // Empty intermediate: nothing to do anywhere; prefer where the
            // data is to avoid a pointless transfer.
            (0.0, current)
        } else if long_len < self.min_gpu_work {
            (long_len as f64 / short_len as f64, Proc::Cpu)
        } else {
            let ratio = long_len as f64 / short_len as f64;
            (
                ratio,
                if ratio < threshold {
                    Proc::Gpu
                } else {
                    Proc::Cpu
                },
            )
        };
        Decision {
            short_len,
            long_len,
            ratio,
            effective_threshold: threshold,
            hysteresis_applied,
            chosen,
        }
    }

    /// The paper's block-skipping guarantee (§3.2, Fig. 9): with ratio
    /// above the block size, the short list has fewer elements than the
    /// long list has blocks, so at least one block is skippable.
    pub fn skippable_blocks_guaranteed(
        &self,
        short_len: usize,
        long_len: usize,
        block_len: usize,
    ) -> bool {
        let blocks = long_len.div_ceil(block_len);
        short_len < blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_ratio_goes_to_gpu() {
        let s = Scheduler::for_block_len(128);
        assert_eq!(s.decide(10_000, 100_000, Proc::Cpu), Proc::Gpu); // ratio 10
        assert_eq!(s.decide(10_000, 1_000_000, Proc::Cpu), Proc::Gpu); // ratio 100
    }

    #[test]
    fn high_ratio_goes_to_cpu() {
        let s = Scheduler::for_block_len(128);
        assert_eq!(s.decide(1_000, 1_000_000, Proc::Cpu), Proc::Cpu); // ratio 1000
        assert_eq!(s.decide(1_000, 128_000, Proc::Cpu), Proc::Cpu); // exactly 128
    }

    #[test]
    fn hysteresis_keeps_borderline_ops_on_gpu() {
        let s = Scheduler::for_block_len(128);
        // Ratio 150: above 128 but below 256.
        assert_eq!(s.decide(1_000, 150_000, Proc::Gpu), Proc::Gpu);
        assert_eq!(s.decide(1_000, 150_000, Proc::Cpu), Proc::Cpu);
        // Far above the threshold migrates regardless.
        assert_eq!(s.decide(1_000, 500_000, Proc::Gpu), Proc::Cpu);
    }

    #[test]
    fn static_scheduler_ignores_placement() {
        let s = Scheduler::paper_static(128);
        assert_eq!(s.decide(1_000, 150_000, Proc::Gpu), Proc::Cpu);
    }

    #[test]
    fn threshold_follows_block_size() {
        let s64 = Scheduler::paper_static(64);
        let s256 = Scheduler::paper_static(256);
        // Ratio 100: above 64's threshold, below 256's.
        assert_eq!(s64.decide(1_000, 100_000, Proc::Cpu), Proc::Cpu);
        assert_eq!(s256.decide(1_000, 100_000, Proc::Cpu), Proc::Gpu);
    }

    #[test]
    fn skippable_block_guarantee_matches_fig9() {
        let s = Scheduler::for_block_len(128);
        // λ > 128 ⇒ |R| < |S|/128 = #blocks ⇒ skippable blocks exist.
        assert!(s.skippable_blocks_guaranteed(100, 128_000, 128)); // 1000 blocks
                                                                   // λ = 1: every block relevant (short maps into all of them).
        assert!(!s.skippable_blocks_guaranteed(128_000, 128_000, 128));
    }

    #[test]
    fn tiny_operations_stay_on_cpu() {
        let s = Scheduler::for_block_len(128);
        // Ratio 2 would favour the GPU, but 100-element lists cannot
        // amortize launch overheads.
        assert_eq!(s.decide(50, 100, Proc::Cpu), Proc::Cpu);
        assert_eq!(s.decide(50, 100, Proc::Gpu), Proc::Cpu);
        // The paper-static ablation has no floor.
        let p = Scheduler::paper_static(128);
        assert_eq!(p.decide(50, 100, Proc::Cpu), Proc::Gpu);
    }

    #[test]
    fn empty_intermediate_stays_put() {
        let s = Scheduler::for_block_len(128);
        assert_eq!(s.decide(0, 1_000_000, Proc::Gpu), Proc::Gpu);
        assert_eq!(s.decide(0, 1_000_000, Proc::Cpu), Proc::Cpu);
    }
}
