//! The dynamic intra-query scheduler (paper §3.2).
//!
//! Before each pairwise intersection, Griffin compares the long list's
//! length to the intermediate result's length. If the ratio is below the
//! crossover threshold the operation runs on the GPU, otherwise on the
//! CPU. The threshold defaults to the compression block size: the paper
//! proves that at ratio = block size the short list has fewer elements
//! than the long list has blocks, so skippable blocks are guaranteed to
//! exist — exactly when the CPU's skip search starts beating brute-force
//! parallel decompression ("the value of 128 is closely related to the
//! fact that we compress the list in 128-element blocks").
//!
//! The placement-aware refinement adds hysteresis: when the intermediate
//! already lives on the device, a borderline operation stays there, since
//! migrating costs a PCIe round trip that a marginal CPU win cannot repay.

/// Which processor an operation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proc {
    Cpu,
    Gpu,
}

impl Proc {
    /// Stable lowercase label, used as a metric/trace dimension.
    pub fn label(self) -> &'static str {
        match self {
            Proc::Cpu => "cpu",
            Proc::Gpu => "gpu",
        }
    }
}

/// What the scheduler chose for one pairwise intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Run the whole operation on the CPU.
    Cpu,
    /// Run the whole operation on the GPU.
    Gpu,
    /// Co-execute: partition the long list by docID range, hand the
    /// first `gpu_fraction` of it to the device and the rest to the
    /// host, run both lanes concurrently, and concatenate the partial
    /// results. Only emitted for host-resident intermediates near the
    /// crossover ratio (see [`SplitConfig`]).
    Split {
        /// Share of the long list's blocks assigned to the GPU lane,
        /// solved from both cost models so the lanes finish together
        /// ([`crate::cost::CostModel::split_fraction`]). The engine's
        /// adaptive balancer refines it per query before executing.
        gpu_fraction: f64,
    },
}

impl Decision {
    /// Stable lowercase label, used as a metric/trace dimension.
    pub fn label(self) -> &'static str {
        match self {
            Decision::Cpu => "cpu",
            Decision::Gpu => "gpu",
            Decision::Split { .. } => "split",
        }
    }

    /// The processor that must hold the *intermediate* for this decision:
    /// a split runs its lanes from a host-resident intermediate, so it
    /// maps to [`Proc::Cpu`] (the engine's placement and prefetch logic
    /// key off residency, not device involvement).
    pub fn proc(self) -> Proc {
        match self {
            Decision::Gpu => Proc::Gpu,
            Decision::Cpu | Decision::Split { .. } => Proc::Cpu,
        }
    }
}

/// Cache residency of the long list at decision time, probed from the
/// host decoded-list cache and the device LRU. The scheduler folds this
/// into its cost comparison: a host-cached list loses its CPU decode
/// term, a device-cached list loses its PCIe term.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Residency {
    /// The long list's decoded docIDs sit in the host decoded-list cache.
    pub host_cached: bool,
    /// The long list is device-resident (LRU cache or in-flight prefetch).
    pub device_cached: bool,
}

impl Residency {
    /// No tier holds the list — the residency-blind decision stands.
    pub fn cold() -> Residency {
        Residency::default()
    }
}

/// Everything that went into (and came out of) one scheduling decision,
/// surfaced for telemetry and the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTrace {
    pub short_len: usize,
    pub long_len: usize,
    /// `long_len / short_len` (0 when the intermediate is empty).
    pub ratio: f64,
    /// The threshold the ratio was compared against, after any
    /// placement-aware hysteresis.
    pub effective_threshold: f64,
    /// Whether hysteresis inflated the threshold for this decision.
    pub hysteresis_applied: bool,
    /// The long list's cache residency at decision time (all-cold for
    /// residency-blind calls).
    pub residency: Residency,
    /// What the residency-blind rule chose — the decision every run
    /// makes when the caches are off.
    pub baseline: Decision,
    /// Whether residency changed the outcome: a processor flip or a
    /// split-fraction shift "won by cache".
    pub cache_flip: bool,
    pub chosen: Decision,
}

/// Co-execution configuration: when (and how) the scheduler splits an
/// intersection across both processors instead of picking one.
///
/// A split is considered only when the intermediate is host-resident
/// (both lanes start from the host copy; migrating first would pay the
/// PCIe round trip the split is trying to avoid), the long list clears
/// the `min_gpu_work` floor, and the length ratio falls inside the
/// *split band* — the CPU-owned side of the crossover, `[threshold,
/// threshold * band]`. The band is one-sided on purpose: below the
/// threshold the device wins the operation outright *and* holds the
/// intermediate, so a split there would only drag the preceding work
/// onto the host; far above the band the CPU's skip search is so cheap
/// the device's fixed per-step overheads can never pay for themselves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitConfig {
    /// Width of the split band, as a multiplier: ratios in
    /// `[threshold, threshold * band]` co-execute.
    pub band: f64,
    /// The cost model the GPU-lane share is solved from.
    pub model: crate::cost::CostModel,
    /// Overrides the solved fraction (tests and the fraction-sweep
    /// bench force specific splits, including the degenerate 0.0/1.0).
    pub forced_fraction: Option<f64>,
}

impl SplitConfig {
    /// Co-execution with the solver-chosen fraction and the default band.
    pub fn new(model: crate::cost::CostModel) -> SplitConfig {
        SplitConfig {
            band: 4.0,
            model,
            forced_fraction: None,
        }
    }

    /// Forces every eligible operation to split at exactly `fraction`,
    /// regardless of ratio (the band test is bypassed). Used by the
    /// equivalence tests and the static-grid sweep.
    pub fn forced(model: crate::cost::CostModel, fraction: f64) -> SplitConfig {
        SplitConfig {
            band: f64::INFINITY,
            model,
            forced_fraction: Some(fraction),
        }
    }
}

/// Per-query feedback controller for the split fraction.
///
/// The cost models predict lane times from element counts alone; real
/// lanes diverge (data-dependent skip behaviour, cache-resident blocks,
/// retry backoff). After every split the engine reports the measured
/// lane times; the balancer nudges a multiplicative bias toward the lane
/// that finished late, so the *next* split converges on equal finish
/// times — classic multiplicative-increase feedback, clamped so a single
/// pathological operation cannot wedge the controller.
#[derive(Debug, Clone)]
pub struct SplitBalancer {
    /// Multiplier applied to the solver's fraction (1.0 = trust the
    /// model).
    pub bias: f64,
    /// Exponent on the observed lane-time ratio per update (0.5 = move
    /// halfway in log space; smaller is more damped).
    pub gain: f64,
    /// `bias` is clamped to `[1/limit, limit]`.
    pub limit: f64,
}

impl Default for SplitBalancer {
    fn default() -> SplitBalancer {
        SplitBalancer {
            bias: 1.0,
            gain: 0.5,
            limit: 4.0,
        }
    }
}

impl SplitBalancer {
    /// The fraction to actually execute, given the solver's estimate.
    pub fn refine(&self, solved: f64) -> f64 {
        (solved * self.bias).clamp(0.02, 0.98)
    }

    /// Feed back one measured split: `cpu_lane` and `gpu_lane` are the
    /// two lanes' busy times in nanoseconds. A late CPU lane
    /// (`cpu > gpu`) grows the bias so the device takes more next time;
    /// a late GPU lane shrinks it.
    pub fn observe(&mut self, cpu_lane_ns: u64, gpu_lane_ns: u64) {
        if cpu_lane_ns == 0 || gpu_lane_ns == 0 {
            return; // a degenerate (empty-lane) split carries no signal
        }
        let imbalance = cpu_lane_ns as f64 / gpu_lane_ns as f64;
        self.bias = (self.bias * imbalance.powf(self.gain)).clamp(1.0 / self.limit, self.limit);
    }

    /// Forget everything measured so far (e.g. between workloads).
    pub fn reset(&mut self) {
        self.bias = 1.0;
    }
}

/// The ratio-crossover scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// GPU/CPU crossover ratio (paper default: the block size, 128).
    pub ratio_threshold: usize,
    /// Hysteresis: borderline ops stay on the processor holding the data.
    pub placement_aware: bool,
    /// Multiplier applied to the threshold when the data is already
    /// device-resident (only with `placement_aware`).
    pub hysteresis: f64,
    /// Operations whose long list is shorter than this always run on the
    /// CPU: tiny kernels cannot amortize launch/allocation/PCIe overheads
    /// ("these costs occur just once, so running larger, more complex
    /// query operations can amortize them" — paper §2.3). The paper's
    /// crossover study itself only measures lists of 1M–2M elements.
    pub min_gpu_work: usize,
    /// Co-execution: `Some` lets borderline operations split across both
    /// processors ([`Decision::Split`]); `None` restores the pure
    /// pick-one behaviour. The bare scheduler constructors leave this
    /// off; [`crate::Griffin`] enables it by default.
    pub split: Option<SplitConfig>,
    /// Cost model for cache-aware overrides ([`Scheduler::decide_traced_resident`]).
    /// Installed by [`Scheduler::apply_cost_model`]; `None` (the bare
    /// constructors) makes residency a no-op and every decision
    /// residency-blind.
    pub cache_model: Option<crate::cost::CostModel>,
}

impl Scheduler {
    /// Scheduler for an index compressed in `block_len`-element blocks.
    pub fn for_block_len(block_len: usize) -> Scheduler {
        Scheduler {
            ratio_threshold: block_len,
            placement_aware: true,
            hysteresis: 2.0,
            min_gpu_work: 8_192,
            split: None,
            cache_model: None,
        }
    }

    /// A paper-faithful static scheduler (no placement awareness), for the
    /// ablation study.
    pub fn paper_static(block_len: usize) -> Scheduler {
        Scheduler {
            ratio_threshold: block_len,
            placement_aware: false,
            hysteresis: 1.0,
            min_gpu_work: 0,
            split: None,
            cache_model: None,
        }
    }

    /// Re-derives the `min_gpu_work` floor from an analytic cost model,
    /// making the planner overlap-aware: with copy/compute overlap the
    /// per-step transfer hides behind compute, smaller operations become
    /// profitable on the device, and the crossover moves down (see
    /// [`crate::cost::CostModel`]). The ratio threshold itself is
    /// untouched — it encodes the block-skipping argument, which overlap
    /// does not change.
    pub fn apply_cost_model(&mut self, model: &crate::cost::CostModel) {
        self.min_gpu_work = model.min_profitable_long_len();
        self.cache_model = Some(*model);
        if let Some(split) = &mut self.split {
            split.model = *model;
        }
    }

    /// Decides where the next pairwise intersection should run.
    ///
    /// * `short_len` — current intermediate length (or the shortest list
    ///   for the first operation);
    /// * `long_len` — the next list's length;
    /// * `current` — where the intermediate currently lives.
    ///
    /// Returns the processor that must end up holding the intermediate;
    /// a [`Decision::Split`] maps to [`Proc::Cpu`] (host-resident lanes).
    /// Use [`Scheduler::decide_traced`] for the full decision.
    pub fn decide(&self, short_len: usize, long_len: usize, current: Proc) -> Proc {
        self.decide_traced(short_len, long_len, current)
            .chosen
            .proc()
    }

    /// [`Scheduler::decide`], returning the full [`DecisionTrace`] record
    /// (inputs, ratio, effective threshold, hysteresis) for telemetry.
    pub fn decide_traced(&self, short_len: usize, long_len: usize, current: Proc) -> DecisionTrace {
        let hysteresis_applied = self.placement_aware && current == Proc::Gpu;
        let mut threshold = self.ratio_threshold as f64;
        if hysteresis_applied {
            threshold *= self.hysteresis;
        }
        let (ratio, chosen) = if short_len == 0 {
            // Empty intermediate: nothing to do anywhere; prefer where the
            // data is to avoid a pointless transfer.
            (
                0.0,
                match current {
                    Proc::Cpu => Decision::Cpu,
                    Proc::Gpu => Decision::Gpu,
                },
            )
        } else if long_len < self.min_gpu_work {
            (long_len as f64 / short_len as f64, Decision::Cpu)
        } else {
            let ratio = long_len as f64 / short_len as f64;
            let chosen = match self.split_decision(ratio, short_len, long_len, current) {
                Some(split) => split,
                None if ratio < threshold => Decision::Gpu,
                None => Decision::Cpu,
            };
            (ratio, chosen)
        };
        DecisionTrace {
            short_len,
            long_len,
            ratio,
            effective_threshold: threshold,
            hysteresis_applied,
            residency: Residency::cold(),
            baseline: chosen,
            cache_flip: false,
            chosen,
        }
    }

    /// [`Scheduler::decide_traced`], then a residency-gated override: the
    /// baseline (residency-blind) decision is computed first with the
    /// rules above, and only when a cache tier actually holds the long
    /// list is it re-examined under the resident cost curves —
    ///
    /// * baseline **GPU** + host-cached: flip to CPU when the resident
    ///   host cost (no decode) undercuts the device step;
    /// * baseline **CPU** + device-cached: flip to GPU when the resident
    ///   device step (no PCIe) undercuts the host;
    /// * baseline **Split** + host-cached: re-solve the fraction with the
    ///   resident CPU-lane curve — the device share shrinks, possibly to
    ///   a pure-CPU decision. (Device residency leaves splits alone: a
    ///   split's range upload bypasses the device cache.)
    ///
    /// With an all-cold [`Residency`], no installed cost model, or a
    /// forced split fraction, the baseline stands untouched — so every
    /// caches-off run decides exactly as [`Scheduler::decide_traced`].
    pub fn decide_traced_resident(
        &self,
        short_len: usize,
        long_len: usize,
        current: Proc,
        residency: Residency,
    ) -> DecisionTrace {
        let mut trace = self.decide_traced(short_len, long_len, current);
        trace.residency = residency;
        let Some(model) = &self.cache_model else {
            return trace;
        };
        if (!residency.host_cached && !residency.device_cached) || short_len == 0 || long_len == 0 {
            return trace;
        }
        let overridden = match trace.baseline {
            Decision::Gpu if residency.host_cached => {
                let cpu = model.cpu_intersect_host_resident_ns(short_len, long_len);
                let gpu = if residency.device_cached {
                    model.gpu_step_device_resident_ns(long_len)
                } else {
                    model.gpu_step_ns(long_len)
                };
                (cpu < gpu).then_some(Decision::Cpu)
            }
            Decision::Cpu if residency.device_cached => {
                let gpu = model.gpu_step_device_resident_ns(long_len);
                let cpu = if residency.host_cached {
                    model.cpu_intersect_host_resident_ns(short_len, long_len)
                } else {
                    model.cpu_intersect_ns(short_len, long_len)
                };
                (gpu < cpu).then_some(Decision::Gpu)
            }
            Decision::Split { gpu_fraction } if residency.host_cached => {
                let forced = self
                    .split
                    .as_ref()
                    .is_some_and(|s| s.forced_fraction.is_some());
                if forced {
                    None
                } else {
                    let f = model.split_fraction_host_resident(short_len, long_len);
                    if f <= 0.01 {
                        Some(Decision::Cpu)
                    } else if f >= 0.99 {
                        Some(Decision::Gpu)
                    } else if (f - gpu_fraction).abs() > 1e-9 {
                        Some(Decision::Split { gpu_fraction: f })
                    } else {
                        None
                    }
                }
            }
            _ => None,
        };
        if let Some(chosen) = overridden {
            trace.chosen = chosen;
            trace.cache_flip = true;
        }
        trace
    }

    /// Evaluates the co-execution rule: `Some(Decision::Split)` when this
    /// operation should run on both processors at once. Splits require a
    /// host-resident intermediate (device-resident data already enjoys
    /// hysteresis, and both lanes start from the host copy) and a ratio
    /// inside the configured band — at or above the crossover, where the
    /// pick-one scheduler would choose the CPU (see [`SplitConfig`]).
    fn split_decision(
        &self,
        ratio: f64,
        short_len: usize,
        long_len: usize,
        current: Proc,
    ) -> Option<Decision> {
        let split = self.split.as_ref()?;
        if current != Proc::Cpu {
            return None;
        }
        let threshold = self.ratio_threshold as f64;
        if split.forced_fraction.is_none()
            && !(ratio >= threshold && ratio <= threshold * split.band)
        {
            return None;
        }
        let gpu_fraction = match split.forced_fraction {
            Some(f) => f.clamp(0.0, 1.0),
            None => {
                let f = split.model.split_fraction(short_len, long_len);
                // A near-degenerate solution means one processor should
                // just take the whole operation.
                if f <= 0.01 {
                    return Some(Decision::Cpu);
                }
                if f >= 0.99 {
                    return Some(Decision::Gpu);
                }
                f
            }
        };
        Some(Decision::Split { gpu_fraction })
    }

    /// The paper's block-skipping guarantee (§3.2, Fig. 9): with ratio
    /// above the block size, the short list has fewer elements than the
    /// long list has blocks, so at least one block is skippable.
    pub fn skippable_blocks_guaranteed(
        &self,
        short_len: usize,
        long_len: usize,
        block_len: usize,
    ) -> bool {
        let blocks = long_len.div_ceil(block_len);
        short_len < blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_ratio_goes_to_gpu() {
        let s = Scheduler::for_block_len(128);
        assert_eq!(s.decide(10_000, 100_000, Proc::Cpu), Proc::Gpu); // ratio 10
        assert_eq!(s.decide(10_000, 1_000_000, Proc::Cpu), Proc::Gpu); // ratio 100
    }

    #[test]
    fn high_ratio_goes_to_cpu() {
        let s = Scheduler::for_block_len(128);
        assert_eq!(s.decide(1_000, 1_000_000, Proc::Cpu), Proc::Cpu); // ratio 1000
        assert_eq!(s.decide(1_000, 128_000, Proc::Cpu), Proc::Cpu); // exactly 128
    }

    #[test]
    fn hysteresis_keeps_borderline_ops_on_gpu() {
        let s = Scheduler::for_block_len(128);
        // Ratio 150: above 128 but below 256.
        assert_eq!(s.decide(1_000, 150_000, Proc::Gpu), Proc::Gpu);
        assert_eq!(s.decide(1_000, 150_000, Proc::Cpu), Proc::Cpu);
        // Far above the threshold migrates regardless.
        assert_eq!(s.decide(1_000, 500_000, Proc::Gpu), Proc::Cpu);
    }

    #[test]
    fn static_scheduler_ignores_placement() {
        let s = Scheduler::paper_static(128);
        assert_eq!(s.decide(1_000, 150_000, Proc::Gpu), Proc::Cpu);
    }

    #[test]
    fn threshold_follows_block_size() {
        let s64 = Scheduler::paper_static(64);
        let s256 = Scheduler::paper_static(256);
        // Ratio 100: above 64's threshold, below 256's.
        assert_eq!(s64.decide(1_000, 100_000, Proc::Cpu), Proc::Cpu);
        assert_eq!(s256.decide(1_000, 100_000, Proc::Cpu), Proc::Gpu);
    }

    #[test]
    fn skippable_block_guarantee_matches_fig9() {
        let s = Scheduler::for_block_len(128);
        // λ > 128 ⇒ |R| < |S|/128 = #blocks ⇒ skippable blocks exist.
        assert!(s.skippable_blocks_guaranteed(100, 128_000, 128)); // 1000 blocks
                                                                   // λ = 1: every block relevant (short maps into all of them).
        assert!(!s.skippable_blocks_guaranteed(128_000, 128_000, 128));
    }

    #[test]
    fn tiny_operations_stay_on_cpu() {
        let s = Scheduler::for_block_len(128);
        // Ratio 2 would favour the GPU, but 100-element lists cannot
        // amortize launch overheads.
        assert_eq!(s.decide(50, 100, Proc::Cpu), Proc::Cpu);
        assert_eq!(s.decide(50, 100, Proc::Gpu), Proc::Cpu);
        // The paper-static ablation has no floor.
        let p = Scheduler::paper_static(128);
        assert_eq!(p.decide(50, 100, Proc::Cpu), Proc::Gpu);
    }

    #[test]
    fn empty_intermediate_stays_put() {
        let s = Scheduler::for_block_len(128);
        assert_eq!(s.decide(0, 1_000_000, Proc::Gpu), Proc::Gpu);
        assert_eq!(s.decide(0, 1_000_000, Proc::Cpu), Proc::Cpu);
    }

    fn split_scheduler() -> Scheduler {
        let cfg = griffin_gpu_sim::DeviceConfig::tesla_k20();
        let model = crate::cost::CostModel::from_device(&cfg, true);
        let mut s = Scheduler::for_block_len(128);
        s.split = Some(SplitConfig::new(model));
        s
    }

    #[test]
    fn in_band_host_resident_ops_split() {
        let s = split_scheduler();
        // Ratio exactly at the crossover, well above the work floor, and
        // host-resident: prime split territory.
        let d = s.decide_traced(8_192, 8_192 * 128, Proc::Cpu);
        match d.chosen {
            Decision::Split { gpu_fraction } => {
                assert!(gpu_fraction > 0.0 && gpu_fraction < 1.0);
            }
            other => panic!("expected a split, got {other:?}"),
        }
        // The residency view of a split is the host.
        assert_eq!(d.chosen.proc(), Proc::Cpu);
        assert_eq!(d.chosen.label(), "split");
    }

    #[test]
    fn out_of_band_ratios_do_not_split() {
        let s = split_scheduler();
        // Ratio 4: far below the crossover — the GPU takes it whole.
        assert!(matches!(
            s.decide_traced(100_000, 400_000, Proc::Cpu).chosen,
            Decision::Gpu
        ));
        // Ratio 10_000: far above — the CPU's skip search wins outright.
        assert!(matches!(
            s.decide_traced(100, 1_000_000, Proc::Cpu).chosen,
            Decision::Cpu
        ));
    }

    #[test]
    fn device_resident_intermediates_never_split() {
        let s = split_scheduler();
        let d = s.decide_traced(8_192, 8_192 * 128, Proc::Gpu);
        assert!(!matches!(d.chosen, Decision::Split { .. }));
    }

    #[test]
    fn forced_fraction_bypasses_the_band() {
        let cfg = griffin_gpu_sim::DeviceConfig::tesla_k20();
        let model = crate::cost::CostModel::from_device(&cfg, true);
        let mut s = Scheduler::for_block_len(128);
        s.split = Some(SplitConfig::forced(model, 0.25));
        // Ratio 4 is way out of the default band, but forcing splits it
        // anyway (as the equivalence tests need).
        let d = s.decide_traced(100_000, 400_000, Proc::Cpu);
        assert_eq!(d.chosen, Decision::Split { gpu_fraction: 0.25 });
    }

    #[test]
    fn split_respects_the_work_floor() {
        let mut s = split_scheduler();
        s.min_gpu_work = 1 << 20;
        let d = s.decide_traced(4_096, 4_096 * 128, Proc::Cpu);
        assert!(matches!(d.chosen, Decision::Cpu));
    }

    #[test]
    fn cold_residency_is_the_baseline() {
        let cfg = griffin_gpu_sim::DeviceConfig::tesla_k20();
        let model = crate::cost::CostModel::from_device(&cfg, true);
        let mut s = split_scheduler();
        s.apply_cost_model(&model);
        for (short, long, cur) in [
            (10_000, 100_000, Proc::Cpu),
            (1_000, 1_000_000, Proc::Cpu),
            (8_192, 8_192 * 128, Proc::Cpu),
            (1_000, 150_000, Proc::Gpu),
            (0, 1_000_000, Proc::Gpu),
        ] {
            let blind = s.decide_traced(short, long, cur);
            let cold = s.decide_traced_resident(short, long, cur, Residency::cold());
            assert_eq!(
                blind, cold,
                "cold residency must not perturb ({short},{long})"
            );
            assert!(!cold.cache_flip);
            assert_eq!(cold.baseline, cold.chosen);
        }
    }

    #[test]
    fn host_residency_can_flip_gpu_to_cpu() {
        let cfg = griffin_gpu_sim::DeviceConfig::tesla_k20();
        let model = crate::cost::CostModel::from_device(&cfg, true);
        let mut s = Scheduler::for_block_len(128);
        s.apply_cost_model(&model);
        // Find a low-ratio operation the blind rule sends to the GPU but
        // whose resident host cost undercuts the device step: at ratio 8
        // the host merge pays decode + merge, so dropping the decode
        // share swings the comparison for modest list lengths.
        let mut flipped = None;
        for exp in 13..24 {
            let long = 1usize << exp;
            let short = long / 8;
            let t = s.decide_traced(short, long, Proc::Cpu);
            if t.chosen != Decision::Gpu {
                continue;
            }
            let r = s.decide_traced_resident(
                short,
                long,
                Proc::Cpu,
                Residency {
                    host_cached: true,
                    device_cached: false,
                },
            );
            if r.cache_flip {
                assert_eq!(r.chosen, Decision::Cpu);
                assert_eq!(r.baseline, Decision::Gpu);
                flipped = Some((short, long));
                break;
            }
        }
        assert!(
            flipped.is_some(),
            "no Gpu→Cpu flip found across the sweep — residency override inert"
        );
    }

    #[test]
    fn device_residency_can_flip_cpu_to_gpu() {
        let cfg = griffin_gpu_sim::DeviceConfig::tesla_k20();
        let model = crate::cost::CostModel::from_device(&cfg, true);
        let mut s = Scheduler::for_block_len(128);
        s.apply_cost_model(&model);
        // An operation the floor keeps off the device despite a low
        // ratio: resident, the PCIe term is gone and the device wins.
        // The window sits just under `min_gpu_work` (the floor's doubling
        // scan overshoots the true crossover), so scan densely below it.
        let floor = s.min_gpu_work;
        let step = (floor / 256).max(1);
        let mut flipped = false;
        let mut long = floor.saturating_sub(1);
        while long >= 256 {
            let short = long / 4;
            let t = s.decide_traced(short, long, Proc::Cpu);
            assert_eq!(t.chosen, Decision::Cpu, "below the floor is CPU-only");
            let r = s.decide_traced_resident(
                short,
                long,
                Proc::Cpu,
                Residency {
                    host_cached: false,
                    device_cached: true,
                },
            );
            if r.cache_flip {
                assert_eq!(r.chosen, Decision::Gpu);
                flipped = true;
                break;
            }
            long -= step;
        }
        assert!(flipped, "no Cpu→Gpu flip found below the work floor");
    }

    #[test]
    fn host_residency_shrinks_split_fractions() {
        let cfg = griffin_gpu_sim::DeviceConfig::tesla_k20();
        let model = crate::cost::CostModel::from_device(&cfg, true);
        let mut s = split_scheduler();
        s.apply_cost_model(&model);
        let (short, long) = (8_192, 8_192 * 128);
        let blind = s.decide_traced(short, long, Proc::Cpu);
        let Decision::Split { gpu_fraction: cold } = blind.chosen else {
            panic!("expected a baseline split, got {:?}", blind.chosen);
        };
        let r = s.decide_traced_resident(
            short,
            long,
            Proc::Cpu,
            Residency {
                host_cached: true,
                device_cached: false,
            },
        );
        match r.chosen {
            Decision::Split { gpu_fraction } => {
                assert!(
                    gpu_fraction <= cold,
                    "resident host lane must not grow the device share ({cold} -> {gpu_fraction})"
                );
                assert!(r.cache_flip == (gpu_fraction != cold));
            }
            Decision::Cpu => assert!(r.cache_flip),
            other => panic!("host residency produced {other:?}"),
        }
    }

    #[test]
    fn forced_fractions_ignore_residency() {
        let cfg = griffin_gpu_sim::DeviceConfig::tesla_k20();
        let model = crate::cost::CostModel::from_device(&cfg, true);
        let mut s = Scheduler::for_block_len(128);
        s.split = Some(SplitConfig::forced(model, 0.25));
        s.apply_cost_model(&model);
        let r = s.decide_traced_resident(
            100_000,
            400_000,
            Proc::Cpu,
            Residency {
                host_cached: true,
                device_cached: true,
            },
        );
        assert_eq!(r.chosen, Decision::Split { gpu_fraction: 0.25 });
        assert!(!r.cache_flip);
    }

    #[test]
    fn balancer_shifts_work_toward_the_late_lane() {
        let mut b = SplitBalancer::default();
        // CPU lane twice as slow: the device should take more next time.
        b.observe(2_000, 1_000);
        assert!(b.bias > 1.0);
        assert!(b.refine(0.5) > 0.5);
        // Symmetric correction pulls it back.
        b.observe(1_000, 2_000);
        assert!((b.bias - 1.0).abs() < 1e-9);
        // Degenerate lanes carry no signal.
        b.observe(0, 5_000);
        assert!((b.bias - 1.0).abs() < 1e-9);
        // The bias and the refined fraction are clamped.
        for _ in 0..64 {
            b.observe(1_000_000, 1);
        }
        assert!(b.bias <= b.limit);
        assert!(b.refine(1.0) <= 0.98);
        b.reset();
        assert_eq!(b.bias, 1.0);
    }
}
