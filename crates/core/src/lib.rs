//! # griffin — uniting CPU and GPU for intra-query parallelism
//!
//! The paper's primary contribution (PPoPP'18): an information-retrieval
//! query engine that processes *parts of a single query* on whichever
//! processor suits the operation's current characteristics, migrating
//! execution between a state-of-the-art CPU engine ([`griffin_cpu`]) and
//! the Griffin-GPU engine ([`griffin_gpu`]) as the query's list-length
//! ratios drift.
//!
//! The key observation (paper §3.2): as SvS processing proceeds, the
//! intermediate result shrinks monotonically while the remaining lists
//! grow, so the length ratio of each pairwise intersection rises. Below a
//! crossover ratio tied to the 128-element block size, the GPU's
//! parallel decompression + MergePath intersection wins; above it, the
//! CPU's skip-pointer binary search — which avoids decompressing skipped
//! blocks entirely — wins. Griffin's [`sched::Scheduler`] applies this
//! rule *per operation*, accounting for where the data currently lives
//! (PCIe transfers are charged by the device model).
//!
//! [`engine::Griffin`] is the entry point; [`serving`] adds the
//! multi-query event simulation behind the paper's end-to-end (Fig. 14)
//! and tail-latency (Fig. 15) studies.

pub mod cost;
pub mod engine;
pub mod fleet;
pub mod plan;
pub mod query;
pub mod request;
pub mod rescache;
pub mod sched;
pub mod serving;

pub use cost::{CostModel, KernelMeasurements};
pub use engine::{ExecMode, Griffin, GriffinOutput, RecoveryPolicy, Search, StepOp, StepTrace};
pub use fleet::{merge_topk, FleetInfo, ShardOutcome, ShardStatus, ShardedIndex};
pub use griffin_cpu::PruneStats;
pub use plan::{Plan, PlanNode, Planner};
pub use query::Query;
pub use request::{QueryError, QueryRequest};
pub use rescache::{CachedResult, ResultCache, ResultCacheStats, RESULT_CACHE_LOOKUP};
pub use sched::{Decision, DecisionTrace, Proc, Residency, Scheduler, SplitBalancer, SplitConfig};
pub use serving::{Job, Resource, ServingSim, StageReq};
