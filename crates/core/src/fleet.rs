//! Fleet-side result types and the bit-exact scatter–gather merge.
//!
//! The coordinator itself (routing, hedging, failover, budgets) lives in
//! `griffin-server`; this module holds what the *engine* layer needs to
//! know about a fleet: the sharded index view ([`ShardedIndex`]), the
//! top-k merge whose comparator is byte-for-byte the engine's own
//! ([`merge_topk`]), and the coverage annotations a partial answer
//! carries in [`crate::GriffinOutput::fleet`].

use griffin_gpu_sim::VirtualNanos;
use griffin_index::{partition, InvertedIndex, ShardPlan};

/// A docID-range sharded view of one corpus: the shard plan plus one
/// [`InvertedIndex`] shard view per range (see `griffin_index::shard`).
/// Shard views score with whole-corpus statistics, which is what makes
/// [`merge_topk`] over per-shard answers bit-exact with the unsharded
/// engine.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    plan: ShardPlan,
    shards: Vec<InvertedIndex>,
}

impl ShardedIndex {
    /// Slices `index` into `num_shards` near-equal docID ranges.
    pub fn build(index: &InvertedIndex, num_shards: usize) -> ShardedIndex {
        let plan = ShardPlan::even(index.num_docs(), num_shards);
        let shards = partition(index, &plan);
        ShardedIndex { plan, shards }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    pub fn shard(&self, s: usize) -> &InvertedIndex {
        &self.shards[s]
    }

    /// The docID range shard `s` owns.
    pub fn range(&self, s: usize) -> std::ops::Range<u32> {
        self.plan.range(s)
    }
}

/// Merges per-shard top-k lists into the global top-k.
///
/// Uses the engine's own comparator — score descending via `total_cmp`,
/// ties broken by ascending docID — so for disjoint shards (every doc in
/// exactly one shard) the merged prefix is bit-identical to the
/// unsharded engine's `top_k`, NaN poisoning included.
pub fn merge_topk(parts: &[Vec<(u32, f32)>], k: usize) -> Vec<(u32, f32)> {
    let mut all: Vec<(u32, f32)> = parts.iter().flat_map(|p| p.iter().copied()).collect();
    let cmp = |a: &(u32, f32), b: &(u32, f32)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
    all.sort_unstable_by(cmp);
    all.truncate(k);
    all
}

/// Why a shard's slot in a fleet answer looks the way it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The shard answered through its normal (requested-mode) lane.
    Answered,
    /// Every replica's breaker was open; the shard answered through its
    /// CPU-only lane. Results are still exact — only latency differs.
    AnsweredCpuOnly,
    /// The shard answered, but after the query's deadline; its results
    /// were left out of the merge under the partial-results policy.
    Dropped,
    /// No live replica existed; the shard contributed nothing.
    Missing,
}

impl ShardOutcome {
    /// Whether this shard's results are present in the merged top-k.
    pub fn covered(&self) -> bool {
        matches!(self, ShardOutcome::Answered | ShardOutcome::AnsweredCpuOnly)
    }

    /// Stable label for telemetry and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ShardOutcome::Answered => "answered",
            ShardOutcome::AnsweredCpuOnly => "answered-cpu-only",
            ShardOutcome::Dropped => "dropped",
            ShardOutcome::Missing => "missing",
        }
    }
}

/// Per-shard status of one fleet answer: which replica served it, how
/// long it took, and whether the tail-latency machinery fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStatus {
    pub shard: usize,
    /// The replica whose answer was used (the hedge winner when one
    /// fired). For [`ShardOutcome::Missing`] there is none.
    pub replica: Option<usize>,
    pub outcome: ShardOutcome,
    /// Answer latency relative to the query's arrival at the
    /// coordinator (zero for a missing shard).
    pub latency: VirtualNanos,
    /// A hedged (second-replica) request was issued for this shard.
    pub hedged: bool,
    /// The hedge answered first.
    pub hedge_won: bool,
    /// Device faults observed by the serving replica.
    pub gpu_faults: u32,
}

/// Fleet coverage annotations on a [`crate::GriffinOutput`]: the
/// explicit accounting that makes partial degradation honest. Every
/// shard appears in `shards` with its outcome — a shard can be dropped
/// or missing, never silent.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetInfo {
    /// Fraction of shards whose results are in the merged top-k
    /// (1.0 = complete answer).
    pub coverage: f64,
    /// One entry per shard, in shard order, always `num_shards` long.
    pub shards: Vec<ShardStatus>,
}

impl FleetInfo {
    /// Builds the info from per-shard statuses, deriving coverage.
    pub fn from_statuses(shards: Vec<ShardStatus>) -> FleetInfo {
        let covered = shards.iter().filter(|s| s.outcome.covered()).count();
        let coverage = if shards.is_empty() {
            1.0
        } else {
            covered as f64 / shards.len() as f64
        };
        FleetInfo { coverage, shards }
    }

    /// Whether every shard's results made it into the merge.
    pub fn complete(&self) -> bool {
        self.shards.iter().all(|s| s.outcome.covered())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    #[test]
    fn merge_matches_single_sorted_order() {
        let parts = vec![
            vec![(10u32, 2.0f32), (30, 1.0)],
            vec![(5u32, 3.0f32), (7, 1.0)],
            vec![],
        ];
        let merged = merge_topk(&parts, 3);
        assert_eq!(merged, vec![(5, 3.0), (10, 2.0), (7, 1.0)]);
        // Ties break by ascending docID across shards.
        let merged = merge_topk(&parts, 4);
        assert_eq!(merged[3], (30, 1.0));
    }

    #[test]
    fn merge_handles_nan_like_topk() {
        // total_cmp sorts positive NaN first, same as the engine's top_k.
        let parts = vec![vec![(1u32, 1.0f32)], vec![(2u32, f32::NAN)]];
        let merged = merge_topk(&parts, 2);
        assert_eq!(merged[0].0, 2);
    }

    #[test]
    fn coverage_counts_covered_outcomes() {
        let status = |s, outcome| ShardStatus {
            shard: s,
            replica: Some(0),
            outcome,
            latency: ns(10),
            hedged: false,
            hedge_won: false,
            gpu_faults: 0,
        };
        let info = FleetInfo::from_statuses(vec![
            status(0, ShardOutcome::Answered),
            status(1, ShardOutcome::AnsweredCpuOnly),
            status(2, ShardOutcome::Dropped),
            status(3, ShardOutcome::Missing),
        ]);
        assert_eq!(info.coverage, 0.5);
        assert!(!info.complete());
        assert_eq!(info.shards.len(), 4);
    }

    #[test]
    fn sharded_index_builds_views() {
        let lists: Vec<Vec<u32>> = vec![(0..100u32).collect(), (0..50u32).map(|i| i * 2).collect()];
        let index = InvertedIndex::from_docid_lists(&lists, 100, Codec::EliasFano, 16);
        let sharded = ShardedIndex::build(&index, 3);
        assert_eq!(sharded.num_shards(), 3);
        let total: usize = (0..3)
            .map(|s| sharded.shard(s).doc_freq(index.lookup("t0").unwrap()))
            .sum();
        assert_eq!(total, 100);
    }
}
