//! The query result cache: the top tier of Griffin's cache hierarchy
//! (host decoded-list cache and device LRU below).
//!
//! Under Zipf traffic the same hot queries arrive over and over; the
//! result cache answers a repeat in a constant-time lookup instead of
//! re-running the whole intersection pipeline. Entries are keyed by
//! [`crate::QueryRequest::cache_signature`] — the canonical query
//! rendering plus `(k, mode, pruned)` and the index epoch, so any knob
//! that changes the answer (or segment churn bumping the epoch) misses
//! naturally.
//!
//! The cache is LRU, bounded by *both* an entry count and a byte budget.
//! Disabled (the default — [`crate::Griffin`] constructs without one),
//! every query executes exactly as before the cache existed: identical
//! bits, identical virtual time. Enabled, a hit returns the stored
//! top-k bit-for-bit and charges `min(lookup, original)` virtual time,
//! so cached serving is strictly no worse than recomputing.

use griffin_gpu_sim::VirtualNanos;

use std::collections::HashMap;

/// Virtual cost of a result-cache hit: one hash probe, a key compare,
/// and cloning the top-k. Hits charge `min` of this and the entry's
/// original execution time, preserving the strictly-no-worse guarantee
/// even for degenerate (near-zero-time) queries.
pub const RESULT_CACHE_LOOKUP: VirtualNanos = VirtualNanos::from_nanos(2_000);

/// Fixed per-entry bookkeeping charged against the byte budget on top
/// of the key and the top-k payload.
const ENTRY_OVERHEAD_BYTES: u64 = 96;

/// Hit/miss/eviction accounting, mirroring the device and host tiers'
/// stats so all three export under one metric scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to execute.
    pub misses: u64,
    /// Entries displaced by the entry or byte bound.
    pub evictions: u64,
    /// Bytes (keys + payloads + overhead) currently resident.
    pub bytes_resident: u64,
}

impl ResultCacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached answer: the exact top-k bits plus the virtual time the
/// original execution took (what a hit saves, and what stale serving
/// reports).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// Top-k (docid, score), best first — bit-identical to execution.
    pub topk: Vec<(u32, f32)>,
    /// The original execution's end-to-end virtual time.
    pub time: VirtualNanos,
}

#[derive(Debug, Clone)]
struct Entry {
    result: CachedResult,
    last_used: u64,
    bytes: u64,
}

/// Entry- and byte-bounded LRU over query results. See the module docs.
#[derive(Debug, Clone)]
pub struct ResultCache {
    map: HashMap<String, Entry>,
    clock: u64,
    bytes: u64,
    max_entries: usize,
    budget_bytes: u64,
    stats: ResultCacheStats,
}

impl ResultCache {
    /// A cache bounded to `max_entries` results and `budget_bytes`
    /// total bytes (both enforced; zero for either disables insertion).
    pub fn new(max_entries: usize, budget_bytes: u64) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            clock: 0,
            bytes: 0,
            max_entries,
            budget_bytes,
            stats: ResultCacheStats::default(),
        }
    }

    /// Looks up a cached answer, bumping its LRU stamp.
    pub fn get(&mut self, key: &str) -> Option<CachedResult> {
        self.clock += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = self.clock;
                self.stats.hits += 1;
                Some(e.result.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks at a cached answer *without* LRU effects or hit/miss
    /// accounting — the admission queue's stale-serve probe, which must
    /// not perturb what a later real lookup would find.
    pub fn peek(&self, key: &str) -> Option<&CachedResult> {
        self.map.get(key).map(|e| &e.result)
    }

    /// Stores an answer. Oversized results (alone over the byte budget)
    /// are refused; otherwise LRU entries are evicted until both bounds
    /// hold.
    pub fn insert(&mut self, key: String, result: CachedResult) {
        let bytes = (key.len() + result.topk.len() * std::mem::size_of::<(u32, f32)>()) as u64
            + ENTRY_OVERHEAD_BYTES;
        if bytes > self.budget_bytes || self.max_entries == 0 {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.bytes;
        }
        self.evict_to_fit(bytes);
        self.bytes += bytes;
        self.map.insert(
            key,
            Entry {
                result,
                last_used: self.clock,
                bytes,
            },
        );
        self.stats.bytes_resident = self.bytes;
    }

    /// Evicts least-recently-used entries until `incoming` more bytes
    /// and one more entry fit within both bounds.
    fn evict_to_fit(&mut self, incoming: u64) {
        while (self.bytes + incoming > self.budget_bytes || self.map.len() >= self.max_entries)
            && !self.map.is_empty()
        {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            let e = self.map.remove(&victim).expect("victim is present");
            self.bytes -= e.bytes;
            self.stats.evictions += 1;
        }
        self.stats.bytes_resident = self.bytes;
    }

    /// Drops every entry (index epoch change or explicit flush); the
    /// hit/miss/eviction history is kept.
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
        self.stats.bytes_resident = 0;
    }

    /// Number of results currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently resident (keys + payloads + overhead).
    pub fn bytes_resident(&self) -> u64 {
        self.bytes
    }

    /// Snapshot of the accounting so far.
    pub fn stats(&self) -> ResultCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(n: usize) -> CachedResult {
        CachedResult {
            topk: (0..n as u32).map(|d| (d, d as f32)).collect(),
            time: VirtualNanos::from_micros(50),
        }
    }

    #[test]
    fn hit_returns_the_exact_stored_result() {
        let mut c = ResultCache::new(16, 1 << 16);
        let r = result(10);
        c.insert("q1".into(), r.clone());
        assert_eq!(c.get("q1"), Some(r));
        assert_eq!(c.get("q2"), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn entry_bound_evicts_lru() {
        let mut c = ResultCache::new(2, 1 << 20);
        c.insert("a".into(), result(4));
        c.insert("b".into(), result(4));
        assert!(c.get("a").is_some()); // bump a: b is now LRU
        c.insert("c".into(), result(4));
        assert_eq!(c.len(), 2);
        assert!(c.peek("a").is_some());
        assert!(c.peek("b").is_none());
        assert!(c.peek("c").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn byte_bound_is_never_exceeded() {
        let budget = 1_000;
        let mut c = ResultCache::new(usize::MAX, budget);
        for i in 0..50 {
            c.insert(format!("query-{i}"), result(10 + i % 7));
            assert!(
                c.bytes_resident() <= budget,
                "resident {} over budget after insert {i}",
                c.bytes_resident()
            );
        }
        // An oversized single result is refused outright.
        let mut tiny = ResultCache::new(16, 64);
        tiny.insert("big".into(), result(1_000));
        assert!(tiny.is_empty());
    }

    #[test]
    fn peek_does_not_count_or_reorder() {
        let mut c = ResultCache::new(16, 1 << 16);
        c.insert("a".into(), result(4));
        let before = c.stats();
        assert!(c.peek("a").is_some());
        assert!(c.peek("zzz").is_none());
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn clear_drops_entries_but_keeps_history() {
        let mut c = ResultCache::new(16, 1 << 16);
        c.insert("a".into(), result(4));
        let _ = c.get("a");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes_resident(), 0);
        assert_eq!(c.stats().hits, 1);
    }
}
