//! Sampling strategies (`select`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy that picks uniformly from a fixed set of options.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].clone()
    }
}

/// `select(options)` — uniform choice among the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}
