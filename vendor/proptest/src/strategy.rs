//! The [`Strategy`] trait and primitive strategies: ranges, tuples,
//! `Just`, `any::<T>()`, and the `prop_map` adaptor.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Generates one value. (Upstream proptest builds a shrinkable value
    /// tree; this stand-in generates directly.)
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate from `self`, then build a second strategy from the value
    /// and generate from that (dependent generation).
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Map adaptor returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Flat-map adaptor returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen::<f32>()
    }
}

/// Strategy over a type's whole (or canonical) domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// Strategies are shared by reference inside collection combinators.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// String patterns: upstream proptest treats `&str` as a regex that
/// generates matching strings. This stand-in supports the subset used
/// in this workspace: a concatenation of atoms, each a literal
/// character or a `[a-z0-9_]`-style class, optionally quantified with
/// `{n}`, `{m,n}`, `?`, `+`, or `*` (`+`/`*` capped at 8 repetitions).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            // Parse one atom: a character class or a literal.
            let choices: Vec<(char, char)> = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().unwrap_or_else(|| {
                            panic!("unterminated character class in pattern {self:?}")
                        });
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars
                                .next()
                                .filter(|&h| h != ']')
                                .unwrap_or_else(|| panic!("bad range in pattern {self:?}"));
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    ranges
                }
                '\\' => {
                    let lit = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern {self:?}"));
                    vec![(lit, lit)]
                }
                lit => vec![(lit, lit)],
            };
            // Parse an optional quantifier.
            let (min, max) = match chars.peek() {
                Some('?') => {
                    chars.next();
                    (0usize, 1usize)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for q in chars.by_ref() {
                        if q == '}' {
                            break;
                        }
                        spec.push(q);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad {m,n} quantifier"),
                            n.trim().parse().expect("bad {m,n} quantifier"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            assert!(!choices.is_empty(), "empty character class in {self:?}");
            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                let (lo, hi) = choices[rng.gen_range(0..choices.len())];
                let span = hi as u32 - lo as u32 + 1;
                let picked = lo as u32 + rng.gen_range(0..span);
                out.push(char::from_u32(picked).expect("valid char range"));
            }
        }
        out
    }
}
