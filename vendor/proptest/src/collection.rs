//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec()`]: a fixed size or a half-open /
/// inclusive range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range must be non-empty");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range must be non-empty");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length falls in `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, size)` — the standard proptest vector combinator.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
