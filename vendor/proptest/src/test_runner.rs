//! Test-runner support types: configuration, error carrier, and the
//! deterministic per-test RNG.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case failed (carried back through `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG handed to strategies: seeded from the test's name so each
/// test sees a stable stream across runs (no shrinking, so stability is
/// what makes failures debuggable).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
