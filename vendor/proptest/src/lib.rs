//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest's API the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), integer /
//! float range strategies, tuple strategies, [`collection::vec`],
//! [`sample::select`], `any::<T>()`, `.prop_map(..)`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from upstream, by design:
//! * cases are generated from a per-test deterministic seed (FNV hash of
//!   the test name), so failures are reproducible run-over-run;
//! * there is **no shrinking** — a failing case reports its case index
//!   and message and panics immediately.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of upstream's `prelude::prop` module path so tests can say
    /// `prop::sample::select(..)` after a glob import.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// The proptest entry-point macro: wraps each contained `fn` in a loop
/// that generates inputs from the given strategies and reports failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 10u32..20, b in 0usize..=4, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u32..100, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_maps((x, y) in (0u64..50, 0u64..50).prop_map(|(a, b)| (a + 100, b))) {
            prop_assert!((100..150).contains(&x));
            prop_assert!(y < 50);
            prop_assert_ne!(x, y);
        }

        #[test]
        fn select_picks_members(b in crate::sample::select(vec![64usize, 128, 256])) {
            prop_assert!(b == 64 || b == 128 || b == 256);
        }

        #[test]
        fn any_produces_values(x in any::<u64>(), flag in any::<bool>()) {
            // Nothing to check beyond type soundness; exercise both.
            let _ = (x, flag);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn failures_panic_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            // No `#[test]` here: the function is invoked directly below
            // (an inner `#[test]` item would be unreachable by the harness
            // and trips the `cannot test inner items` warning).
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(3))]
                fn always_fails(_x in 0u32..10) {
                    prop_assert!(false, "intended failure");
                }
            }
            always_fails();
        });
        let msg = *result
            .expect_err("must panic")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("intended failure"), "{msg}");
    }
}
