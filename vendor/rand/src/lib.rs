//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension trait with `gen` / `gen_range` / `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic, which is all the synthetic
//! workload generators and property tests require. It is *not* the same
//! bit stream as upstream `StdRng` (ChaCha12); nothing in this workspace
//! depends on upstream's exact stream, only on seeded determinism.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided;
/// the workspace never seeds from byte arrays).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly "at large" by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Ranges acceptable to [`Rng::gen_range`]. The two blanket impls key
/// type inference off the range's element type, matching upstream rand
/// (call sites like `rng.gen_range(32..=128).min(x)` rely on this).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // i128 arithmetic covers the full span of every integer
                // type up to 64 bits, signed or unsigned.
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// User-facing extension trait, blanket-implemented for every generator.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
