//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`, `criterion_group!`, `criterion_main!`). Instead of
//! criterion's statistical machinery it runs a short warm-up plus a
//! fixed measurement window and prints the mean iteration time — enough
//! to compare implementations locally without any external deps.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by all benches in a run.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_iters: u64,
    min_measure_time: Duration,
    min_measure_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_iters: 3,
            min_measure_time: Duration::from_millis(200),
            min_measure_iters: 10,
        }
    }
}

/// Runs one closure repeatedly and reports its mean time.
pub struct Bencher<'c> {
    cfg: &'c Criterion,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.cfg.warm_up_iters {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.cfg.min_measure_iters || start.elapsed() < self.cfg.min_measure_time {
            black_box(f());
            iters += 1;
        }
        self.iters = iters;
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn print_result(name: &str, mean_ns: f64, iters: u64, throughput: Option<&Throughput>) {
    let per_iter = match mean_ns {
        ns if ns >= 1e9 => format!("{:.3} s", ns / 1e9),
        ns if ns >= 1e6 => format!("{:.3} ms", ns / 1e6),
        ns if ns >= 1e3 => format!("{:.3} us", ns / 1e3),
        ns => format!("{ns:.1} ns"),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", *n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                *n as f64 / mean_ns * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("bench {name:<60} {per_iter:>12}/iter  ({iters} iters){rate}");
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            cfg: self,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        print_result(name, b.mean_ns, b.iters, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            cfg: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// Per-input throughput annotation.
#[derive(Debug, Clone)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    cfg: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn warm_up_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            cfg: self.cfg,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        print_result(
            &format!("{}/{}", self.name, id.0),
            b.mean_ns,
            b.iters,
            self.throughput.as_ref(),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            cfg: self.cfg,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        print_result(
            &format!("{}/{}", self.name, id.0),
            b.mean_ns,
            b.iters,
            self.throughput.as_ref(),
        );
        self
    }

    pub fn finish(self) {}
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_measures() {
        let mut c = Criterion {
            warm_up_iters: 1,
            min_measure_time: Duration::from_millis(1),
            min_measure_iters: 3,
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran >= 4, "warm-up + measurement iterations must run");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            warm_up_iters: 1,
            min_measure_time: Duration::from_millis(1),
            min_measure_iters: 2,
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("f", 10), &10u32, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        g.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
