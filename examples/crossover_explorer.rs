//! Crossover explorer: sweep the list-length ratio for one pair shape and
//! watch the scheduler's decision track the measured GPU/CPU costs — the
//! paper's §3.2 analysis made interactive.
//!
//! ```text
//! cargo run --release --example crossover_explorer
//! ```

use griffin::{Proc, Scheduler};
use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_cpu::decode::decode_list;
use griffin_cpu::intersect::{merge_intersect, skip_intersect};
use griffin_cpu::{CpuCostModel, WorkCounters};
use griffin_gpu::mergepath::{self, MergePathConfig};
use griffin_gpu::para_ef;
use griffin_gpu::transfer::DeviceEfList;
use griffin_gpu_sim::{DeviceConfig, Gpu, VirtualNanos};
use griffin_workload::{gen_ratio_pair, RatioGroup};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let model = CpuCostModel::default();
    let scheduler = Scheduler::for_block_len(DEFAULT_BLOCK_LEN);
    let mut rng = StdRng::seed_from_u64(42);
    let long_len = 800_000;

    println!("long list: {long_len} elements; sweeping the ratio\n");
    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>12}",
        "ratio", "GPU (ms)", "CPU (ms)", "faster", "scheduler"
    );

    for ratio in [2usize, 8, 24, 64, 96, 160, 320, 768] {
        let group = RatioGroup {
            lo: ratio,
            hi: ratio + 1,
        };
        let (short, long) = gen_ratio_pair(&mut rng, group, long_len, 0.3, 40_000_000);

        // CPU: the engine's auto choice (merge below ratio 16, skip above).
        let pfor = BlockedList::compress(&long, Codec::PforDelta, DEFAULT_BLOCK_LEN);
        let mut w = WorkCounters::default();
        if long.len() / short.len().max(1) < 16 {
            let decoded = decode_list(&pfor, &mut w);
            merge_intersect(&short, &decoded, &mut w);
        } else {
            skip_intersect(&short, &pfor, &mut w);
        }
        let cpu_time = model.time(&w);

        // GPU: upload + Para-EF + MergePath (Griffin-GPU's low-ratio path).
        let ef = BlockedList::compress(&long, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let ((), gpu_time) = gpu.time(|g| {
            let d_short = g.htod(&short).expect("device op");
            let d_long = DeviceEfList::upload(g, &ef).expect("device op");
            let ids = para_ef::decompress(g, &d_long).expect("device op");
            let cfg = MergePathConfig::for_device(g.config());
            let m = mergepath::intersect(g, &d_short, short.len(), &ids, d_long.len, &cfg)
                .expect("device op");
            m.free(g);
            g.free(ids);
            d_long.free(g);
            g.free(d_short);
        });

        let faster = if gpu_time <= cpu_time { "GPU" } else { "CPU" };
        let decision = match scheduler.decide(short.len(), long.len(), Proc::Cpu) {
            Proc::Gpu => "-> GPU",
            Proc::Cpu => "-> CPU",
        };
        let agree = if (faster == "GPU") == (decision == "-> GPU") {
            ""
        } else {
            "  (disagrees)"
        };
        println!(
            "{:>7} {:>12.3} {:>12.3} {:>10} {:>12}{}",
            ratio,
            gpu_time.as_millis_f64(),
            cpu_time.as_millis_f64(),
            faster,
            decision,
            agree
        );
        let _ = VirtualNanos::ZERO;
    }

    println!("\n(the ratio-128 rule approximates the measured crossover; the");
    println!(" disagreement band around it is what the hysteresis absorbs)");
}
