//! Quickstart: build a tiny index from text, run one query in all three
//! execution modes, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use griffin_suite::prelude::*;

fn main() {
    // 1. Build an index (Elias–Fano compression, 128-element blocks).
    let docs = [
        "griffin unites cpu and gpu for query processing",
        "gpu merge path intersection is load balanced",
        "cpu engines use skip pointers and binary search",
        "elias fano encoding compresses inverted lists well",
        "query processing intersects inverted lists of terms",
        "the gpu decompresses lists with parallel elias fano",
        "tail latency drops when heavy query stages move to the gpu",
        "cpu and gpu cooperate within a single query in griffin",
    ];
    let mut builder = IndexBuilder::new(Codec::EliasFano);
    for d in &docs {
        builder.add_text(d);
    }
    let index = builder.build();
    println!(
        "index: {} docs, {} terms, {:.1} bits/posting",
        index.num_docs(),
        index.num_terms(),
        index.size_bits() as f64
            / docs
                .iter()
                .map(|d| d.split_whitespace().count() as u64)
                .sum::<u64>() as f64,
    );

    // 2. Bring up the simulated Tesla K20 and the Griffin system.
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let griffin = Griffin::new(&gpu, index.meta(), index.block_len());

    // 3. A conjunctive query: documents containing all three terms.
    let query: Vec<TermId> = ["gpu", "query", "cpu"]
        .iter()
        .map(|t| index.lookup(t).expect("term in vocabulary"))
        .collect();

    for mode in [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid] {
        let out = griffin.process_query(&index, &query, 5, mode);
        println!("\n== {mode:?} ({}) ==", out.time);
        for (rank, (docid, score)) in out.topk.iter().enumerate() {
            println!(
                "  #{} doc{:<2} score {:.3}  \"{}\"",
                rank + 1,
                docid,
                score,
                docs[*docid as usize]
            );
        }
        if !out.steps.is_empty() {
            println!("  schedule:");
            for s in &out.steps {
                println!(
                    "    {:?} on {:?}: {} (intermediate -> {})",
                    s.op, s.proc, s.time, s.inter_len
                );
            }
        }
    }
}
