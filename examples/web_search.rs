//! Web-scale-ish search scenario: a synthetic index with Fig. 10-shaped
//! posting lists, a Fig. 11-shaped query log, and a per-mode latency
//! comparison — a miniature of the paper's Fig. 14 experiment.
//!
//! ```text
//! cargo run --release --example web_search
//! ```

use std::collections::BTreeMap;

use griffin_suite::prelude::*;
use griffin_workload::LatencyStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2018);

    // A scaled-down ClueWeb stand-in: 48 terms, lists up to 400K postings.
    let spec = ListIndexSpec {
        num_terms: 48,
        num_docs: 2_000_000,
        max_list_len: 400_000,
        ..Default::default()
    };
    println!(
        "generating index ({} terms, {} docs)...",
        spec.num_terms, spec.num_docs
    );
    let (index, _) = build_list_index(&spec, &mut rng);

    let queries = QueryLogSpec {
        num_queries: 120,
        ..Default::default()
    }
    .generate(&index, &mut rng);

    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let griffin = Griffin::new(&gpu, index.meta(), index.block_len());

    // Group latencies by term count, as Fig. 14 does.
    let mut by_terms: BTreeMap<usize, [LatencyStats; 3]> = BTreeMap::new();
    for q in &queries {
        let bucket = by_terms.entry(q.len().min(7)).or_default();
        for (i, mode) in [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid]
            .into_iter()
            .enumerate()
        {
            let out = griffin.process_query(&index, q, 10, mode);
            bucket[i].record(out.time);
        }
    }

    println!("\naverage query latency by number of terms (virtual ms):");
    println!(
        "{:>7} {:>6} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "#terms", "n", "CPU-only", "GPU-only", "Griffin", "vs CPU", "vs GPU"
    );
    for (terms, stats) in &by_terms {
        let cpu = stats[0].mean();
        let gpu_t = stats[1].mean();
        let hyb = stats[2].mean();
        println!(
            "{:>7} {:>6} {:>12.3} {:>12.3} {:>12.3} {:>8.1}x {:>8.1}x",
            if *terms >= 7 {
                ">6".to_string()
            } else {
                terms.to_string()
            },
            stats[0].len(),
            cpu.as_millis_f64(),
            gpu_t.as_millis_f64(),
            hyb.as_millis_f64(),
            hyb.speedup_over(cpu),
            hyb.speedup_over(gpu_t),
        );
    }

    println!("\n(the shape to look for: Griffin tracks the better of the two");
    println!(" engines per query and beats both on mixed workloads — Fig. 14)");
}
