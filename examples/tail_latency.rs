//! Tail-latency study in miniature (paper §4.5, Fig. 15): stream queries
//! through the serving simulator (4 CPU cores + 1 GPU) under CPU-only and
//! Griffin execution and compare the latency percentiles.
//!
//! ```text
//! cargo run --release --example tail_latency
//! ```

use griffin::serving::{Job, Resource, ServingSim, StageReq};
use griffin::{Proc, StepOp};
use griffin_suite::prelude::*;
use griffin_workload::LatencyStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let spec = ListIndexSpec {
        num_terms: 40,
        num_docs: 1_500_000,
        max_list_len: 300_000,
        ..Default::default()
    };
    println!("generating index...");
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: 200,
        ..Default::default()
    }
    .generate(&index, &mut rng);

    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let griffin = Griffin::new(&gpu, index.meta(), index.block_len());

    // Profile each query once per mode to get its stage structure.
    println!("profiling {} queries...", queries.len());
    let mut cpu_jobs = Vec::new();
    let mut hybrid_jobs = Vec::new();
    let mut arrival = VirtualNanos::ZERO;
    for q in &queries {
        // Poisson-ish arrivals: exponential inter-arrival, mean 2 ms.
        arrival += VirtualNanos::from_nanos_f64(-2_000_000.0 * (1.0 - rng.gen::<f64>()).ln());

        let cpu_out = griffin.process_query(&index, q, 10, ExecMode::CpuOnly);
        cpu_jobs.push(Job {
            arrival,
            stages: vec![StageReq::new(Resource::Cpu, cpu_out.time)],
        });

        let hybrid_out = griffin.process_query(&index, q, 10, ExecMode::Hybrid);
        let stages: Vec<StageReq> = hybrid_out
            .steps
            .iter()
            .map(|s| {
                let resource = match (s.proc, s.op) {
                    (Proc::Gpu, _) | (_, StepOp::Migrate) => Resource::Gpu,
                    (Proc::Cpu, _) => Resource::Cpu,
                };
                StageReq::new(resource, s.time)
            })
            .collect();
        hybrid_jobs.push(Job { arrival, stages });
    }

    println!("replaying through the serving simulator (4 CPU cores, 1 GPU)...");
    let cpu_lat = ServingSim::new(4).run(&cpu_jobs);
    let hyb_lat = ServingSim::new(4).run(&hybrid_jobs);

    let mut cpu_stats = LatencyStats::new();
    let mut hyb_stats = LatencyStats::new();
    for (&c, &h) in cpu_lat.iter().zip(&hyb_lat) {
        cpu_stats.record(c);
        hyb_stats.record(h);
    }

    println!("\nlatency percentiles (virtual ms):");
    println!(
        "{:>10} {:>12} {:>12} {:>9}",
        "pct", "CPU-only", "Griffin", "speedup"
    );
    for (p, cpu_p) in cpu_stats.tail_set() {
        let hyb_p = hyb_stats.percentile(p);
        println!(
            "{:>9}% {:>12.3} {:>12.3} {:>8.1}x",
            p,
            cpu_p.as_millis_f64(),
            hyb_p.as_millis_f64(),
            hyb_p.speedup_over(cpu_p),
        );
    }
    println!("\n(expect the speedup to GROW with the percentile — Fig. 15's");
    println!(" signature: Griffin unclogs the heavy queries that block the queue)");
}
