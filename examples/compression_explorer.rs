//! Compression explorer: how the three codecs trade space for different
//! posting-list shapes, and what that costs/saves at decompression time —
//! the context behind the paper's Table 1 and Fig. 12.
//!
//! ```text
//! cargo run --release --example compression_explorer
//! ```

use griffin_cpu::decode::decode_list;
use griffin_cpu::{CpuCostModel, WorkCounters};
use griffin_suite::prelude::*;
use griffin_workload::{gen_docid_list, GapProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let model = CpuCostModel::default();
    let n = 200_000usize;

    println!("list shape: {n} postings, varying density and gap profile\n");
    println!(
        "{:<26} {:>11} {:>10} {:>10} {:>12}",
        "shape / codec", "bits/int", "ratio", "blocks", "cpu decode"
    );

    let shapes: [(&str, u32, GapProfile); 3] = [
        ("dense, heavy-tailed", 2_000_000, GapProfile::HeavyTailed),
        ("sparse, heavy-tailed", 60_000_000, GapProfile::HeavyTailed),
        ("clustered bursts", 60_000_000, GapProfile::Clustered),
    ];

    for (name, num_docs, profile) in shapes {
        let ids = gen_docid_list(&mut rng, n, num_docs, profile);
        println!("-- {name} (mean gap ~{})", num_docs as usize / n);
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = BlockedList::compress(&ids, codec, DEFAULT_BLOCK_LEN);
            let bits = list.size_bits() as f64 / n as f64;
            let ratio = list.raw_bits() as f64 / list.size_bits() as f64;
            let mut w = WorkCounters::default();
            let decoded = decode_list(&list, &mut w);
            assert_eq!(decoded, ids, "codecs must be lossless");
            println!(
                "   {:<23} {:>11.2} {:>9.2}x {:>10} {:>12}",
                format!("{codec:?}"),
                bits,
                ratio,
                list.num_blocks(),
                format!("{}", model.time(&w)),
            );
        }
    }

    println!("\n(Table 1's shape: Elias–Fano out-compresses PforDelta on");
    println!(" heavy-tailed gaps — the distribution real crawls produce)");
}
