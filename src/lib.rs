//! # griffin-suite — the Griffin workspace umbrella
//!
//! Re-exports the public API of every Griffin crate so the examples and
//! cross-crate integration tests have a single import root. Library users
//! should depend on the individual crates:
//!
//! * [`griffin`] — the hybrid engine and scheduler (start here);
//! * [`griffin_cpu`] / [`griffin_gpu`] — the two execution engines;
//! * [`griffin_index`] / [`griffin_codec`] — index and compression;
//! * [`griffin_gpu_sim`] — the simulated device;
//! * [`griffin_workload`] — synthetic corpora, queries, statistics.

pub use griffin;
pub use griffin_codec;
pub use griffin_cpu;
pub use griffin_gpu;
pub use griffin_gpu_sim;
pub use griffin_index;
pub use griffin_workload;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use griffin::{ExecMode, Griffin, GriffinOutput, Proc, Scheduler};
    pub use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
    pub use griffin_cpu::{Bm25, CpuEngine};
    pub use griffin_gpu::{GpuEngine, GpuStrategy};
    pub use griffin_gpu_sim::{DeviceConfig, Gpu, VirtualNanos};
    pub use griffin_index::{IndexBuilder, InvertedIndex, TermId};
    pub use griffin_workload::{
        build_list_index, build_text_index, CorpusSpec, ListIndexSpec, QueryLogSpec,
    };
}
