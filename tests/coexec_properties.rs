//! Cross-crate invariants of range-partitioned CPU+GPU co-execution.
//!
//! Three pins hold the split layer together:
//!
//! 1. **Splitting is invisible** — for *every* forced GPU fraction
//!    (including the degenerate 0.0 and 1.0) and for the adaptive
//!    balancer, a co-executed query returns bit-exact top-k against the
//!    unsplit hybrid, with or without an armed-but-no-op fault plan.
//! 2. **A split costs the slower lane** — every `SplitIntersect` step's
//!    duration is exactly `max(cpu_lane, gpu_lane)`, never the serial
//!    sum, and step durations still sum to the reported query total.
//! 3. **A fault mid-split degrades, never fails** — losing the device
//!    inside a split's GPU lane still yields the exact answer, with the
//!    wasted lane and the recovery re-run both accounted.
//!
//! Set `GRIFFIN_FAULT_SEED` to vary the workload and fault schedule (the
//! CI `coexec-invariants` job sweeps a fixed set of seeds).

use griffin_suite::griffin::{CostModel, SplitConfig, StepOp};
use griffin_suite::griffin_gpu_sim::FaultPlan;
use griffin_suite::prelude::*;
use griffin_telemetry::Telemetry;

const FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

struct Fixture {
    index: InvertedIndex,
    queries: Vec<Vec<TermId>>,
}

/// Workload derived from the fault seed, so the CI seed sweep varies the
/// inputs as well as the fault schedule.
fn fixture() -> Fixture {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(fault_seed() ^ 0x5EED_C0DE);
    let spec = ListIndexSpec {
        num_terms: 20,
        num_docs: 500_000,
        max_list_len: 100_000,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: 10,
        ..Default::default()
    }
    .generate(&index, &mut rng);
    Fixture { index, queries }
}

fn ids(out: &GriffinOutput) -> Vec<u32> {
    out.topk.iter().map(|&(d, _)| d).collect()
}

fn step_sum(out: &GriffinOutput) -> VirtualNanos {
    out.steps.iter().map(|s| s.time).sum()
}

/// Runs every query in Hybrid mode under the given split configuration
/// (`None` disables co-execution entirely), checking for leaks.
fn run_hybrid(
    fx: &Fixture,
    split: Option<SplitConfig>,
    plan: Option<FaultPlan>,
) -> Vec<GriffinOutput> {
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    gpu.set_fault_plan(plan);
    let mut griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    match split {
        Some(s) => griffin.scheduler.split = Some(s),
        None => griffin.set_coexec(false),
    }
    let outs = fx
        .queries
        .iter()
        .map(|q| griffin.process_query(&fx.index, q, 10, ExecMode::Hybrid))
        .collect();
    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0, "split must not leak device memory");
    outs
}

fn forced(fraction: f64) -> SplitConfig {
    let model = CostModel::from_device(&DeviceConfig::test_tiny(), true);
    SplitConfig::forced(model, fraction)
}

/// Per-output lane accounting: every split step costs exactly the slower
/// lane, and all steps still sum to the query total.
fn assert_lane_accounting(out: &GriffinOutput, ctx: &str) {
    assert_eq!(step_sum(out), out.time, "step sum diverged ({ctx})");
    for s in &out.steps {
        if let StepOp::SplitIntersect {
            cpu_lane, gpu_lane, ..
        } = s.op
        {
            assert_eq!(
                s.time,
                cpu_lane.max(gpu_lane),
                "a split costs max(lanes) ({ctx})"
            );
            assert!(
                s.time <= cpu_lane + gpu_lane,
                "a split can never exceed the serial lane sum ({ctx})"
            );
        }
    }
}

#[test]
fn every_forced_fraction_is_bit_exact_with_unsplit() {
    let fx = fixture();
    let baseline = run_hybrid(&fx, None, None);
    for (out, q) in baseline.iter().zip(&fx.queries) {
        assert!(
            !out.steps
                .iter()
                .any(|s| matches!(s.op, StepOp::SplitIntersect { .. })),
            "co-execution off must never split ({q:?})"
        );
    }

    let mut interior_split_seen = false;
    for f in FRACTIONS {
        let outs = run_hybrid(&fx, Some(forced(f)), None);
        for (a, b) in outs.iter().zip(&baseline) {
            assert_eq!(a.topk, b.topk, "fraction {f} changed results");
            assert_eq!(a.gpu_faults, 0);
            assert_lane_accounting(a, &format!("fraction {f}"));
        }
        for out in &outs {
            for s in &out.steps {
                if let StepOp::SplitIntersect {
                    cpu_lane, gpu_lane, ..
                } = s.op
                {
                    if f == 0.0 {
                        // An all-CPU split never touches the device.
                        assert_eq!(gpu_lane, VirtualNanos::ZERO);
                    }
                    if cpu_lane > VirtualNanos::ZERO && gpu_lane > VirtualNanos::ZERO {
                        interior_split_seen = true;
                    }
                }
            }
        }
    }
    assert!(
        interior_split_seen,
        "the fraction sweep must co-execute both lanes at least once"
    );
}

#[test]
fn adaptive_balancer_is_bit_exact_with_unsplit() {
    let fx = fixture();
    let baseline = run_hybrid(&fx, None, None);
    // The default engine: solver-chosen fractions refined by the
    // balancer's measured-imbalance feedback between operations.
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    assert!(griffin.coexec_enabled(), "co-execution defaults on");
    for (q, expect) in fx.queries.iter().zip(&baseline) {
        let out = griffin.process_query(&fx.index, q, 10, ExecMode::Hybrid);
        assert_eq!(out.topk, expect.topk, "adaptive split changed results");
        assert_lane_accounting(&out, "adaptive");
    }
    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0);
}

#[test]
fn armed_noop_fault_plan_is_bit_exact_under_splits() {
    let fx = fixture();
    let plan = FaultPlan::seeded(fault_seed());
    assert!(plan.is_noop(), "a freshly seeded plan must inject nothing");
    for f in FRACTIONS {
        let bare = run_hybrid(&fx, Some(forced(f)), None);
        let armed = run_hybrid(&fx, Some(forced(f)), Some(plan.clone()));
        for (a, b) in bare.iter().zip(&armed) {
            assert_eq!(a.topk, b.topk, "fraction {f}: armed plan changed results");
            assert_eq!(a.time, b.time, "fraction {f}: armed plan changed timing");
            assert_eq!(a.steps, b.steps, "fraction {f}: armed plan changed steps");
            assert_eq!(b.gpu_faults, 0);
        }
    }
}

#[test]
fn device_loss_mid_split_degrades_but_never_fails() {
    let fx = fixture();
    let seed = fault_seed();

    // CPU-only ground truth on a healthy device.
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    let truth: Vec<Vec<u32>> = fx
        .queries
        .iter()
        .map(|q| ids(&griffin.process_query(&fx.index, q, 10, ExecMode::CpuOnly)))
        .collect();
    griffin.gpu.shutdown();

    // Force aggressive splitting, then lose the device at a spread of
    // operation indices so the loss lands inside split GPU lanes.
    let mut saw_split_fault = false;
    for lost_at in [0u64, 1, 3, 7, 15, 40, 99, 250] {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        gpu.set_fault_plan(Some(FaultPlan::seeded(seed).lose_device_at(lost_at)));
        let mut griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
        griffin.scheduler.split = Some(forced(0.5));
        let mut saw_fault = false;
        for (q, expect) in fx.queries.iter().zip(&truth) {
            let out = griffin.process_query(&fx.index, q, 10, ExecMode::Hybrid);
            assert_eq!(&ids(&out), expect, "lost_at={lost_at}");
            assert_lane_accounting(&out, &format!("lost_at={lost_at}"));
            saw_fault |= out.gpu_faults > 0;
            // A fault inside a split leaves both the split step (its
            // gpu_lane recording the wasted attempts) and a recovery
            // step for the re-run of the device's range.
            if out.gpu_faults > 0
                && out
                    .steps
                    .iter()
                    .any(|s| matches!(s.op, StepOp::SplitIntersect { .. }))
                && out.steps.iter().any(|s| s.op == StepOp::FaultRecovery)
            {
                saw_split_fault = true;
            }
        }
        assert!(saw_fault, "device loss at {lost_at} must surface as faults");
        griffin.gpu.shutdown();
        assert_eq!(
            gpu.mem_in_use(),
            0,
            "no leaks under loss (lost_at={lost_at})"
        );
    }
    assert!(
        saw_split_fault,
        "the sweep must hit at least one fault inside a split query"
    );
}

#[test]
fn splits_surface_in_metrics_and_the_device_timeline() {
    let fx = fixture();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let telemetry = Telemetry::enabled();
    gpu.set_observer(telemetry.device_observer(gpu.config().warp_size));
    let mut griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    griffin.set_telemetry(telemetry.clone());
    griffin.scheduler.split = Some(forced(0.5));
    let mut split_steps = 0usize;
    for q in &fx.queries {
        let out = griffin.process_query(&fx.index, q, 10, ExecMode::Hybrid);
        split_steps += out
            .steps
            .iter()
            .filter(|s| {
                matches!(
                    s.op,
                    StepOp::SplitIntersect {
                        cpu_lane,
                        gpu_lane,
                        ..
                    } if cpu_lane > VirtualNanos::ZERO && gpu_lane > VirtualNanos::ZERO
                )
            })
            .count();
    }
    assert!(split_steps > 0, "forced 0.5 must co-execute something");
    let recorder = telemetry.recorder().expect("enabled");
    assert!(
        recorder.registry.counter("griffin_coexec_split_ops_total") >= split_steps as u64,
        "every split must count"
    );
    // Two-lane splits render their host lane in the Perfetto export.
    let timeline = telemetry.device_timeline().expect("enabled");
    let cpu_lanes = timeline
        .spans
        .iter()
        .filter(|s| s.resource == "cpu-lane")
        .count();
    assert!(cpu_lanes >= split_steps, "each split exports its CPU lane");
    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0);
}
