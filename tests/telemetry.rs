//! Telemetry-layer properties, as integration tests over the full stack:
//!
//! * enabling tracing is *free of observable effect* — identical top-k
//!   and identical virtual timings vs. an untraced run (the recording
//!   path is strictly passive);
//! * a hybrid query's [`griffin::StepTrace`] durations sum exactly to
//!   [`griffin::GriffinOutput::time`];
//! * the serving-sim timeline is a faithful schedule: spans never
//!   overlap within a lane, and reproduce the latencies `run` returns;
//! * log-bucketed histogram quantiles stay within the bucketing's
//!   relative-error bound for arbitrary samples.

use griffin::serving::{Job, Resource, ServingSim, StageReq};
use griffin::{ExecMode, Griffin};
use griffin_codec::Codec;
use griffin_gpu_sim::{DeviceConfig, Gpu, VirtualNanos};
use griffin_index::{InvertedIndex, TermId};
use griffin_telemetry::metrics::Histogram;
use griffin_telemetry::Telemetry;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy shared with `engine_equivalence.rs`: a few posting lists
/// with guaranteed overlap, plus a top-k.
fn index_and_query() -> impl Strategy<Value = (Vec<Vec<u32>>, usize)> {
    (
        vec(0u32..40_000, 200..800),
        vec(vec(0u32..40_000, 50..2_000), 2..4),
        any::<usize>(),
    )
        .prop_map(|(pool, mut lists, k)| {
            for l in &mut lists {
                l.extend(pool.iter().step_by(3));
                l.sort_unstable();
                l.dedup();
            }
            (lists, k % 20 + 1)
        })
}

fn build(lists: &[Vec<u32>]) -> (InvertedIndex, Vec<TermId>) {
    let idx = InvertedIndex::from_docid_lists(lists, 50_000, Codec::EliasFano, 128);
    let terms = (0..lists.len())
        .map(|i| idx.lookup(&format!("t{i}")).expect("term"))
        .collect();
    (idx, terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The engine-equivalence guarantee the tentpole promises: attaching
    /// a live telemetry session (trace recorder + device observer) to
    /// one of two otherwise-identical engines changes neither the top-k
    /// results nor any virtual timing, in any execution mode.
    #[test]
    fn enabled_tracing_changes_no_results_or_timings((lists, k) in index_and_query()) {
        let (idx, terms) = build(&lists);

        let gpu_plain = Gpu::new(DeviceConfig::test_tiny());
        let plain = Griffin::new(&gpu_plain, idx.meta(), idx.block_len());

        let gpu_traced = Gpu::new(DeviceConfig::test_tiny());
        let mut traced = Griffin::new(&gpu_traced, idx.meta(), idx.block_len());
        traced.set_telemetry(Telemetry::enabled());

        for mode in [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid] {
            let a = plain.process_query(&idx, &terms, k, mode);
            let b = traced.process_query(&idx, &terms, k, mode);
            prop_assert_eq!(&a.topk, &b.topk, "top-k diverged in {:?}", mode);
            prop_assert_eq!(a.time, b.time, "total time diverged in {:?}", mode);
            prop_assert_eq!(a.steps.len(), b.steps.len());
            for (sa, sb) in a.steps.iter().zip(&b.steps) {
                prop_assert_eq!(sa.time, sb.time, "step time diverged in {:?}", mode);
                prop_assert_eq!(sa.proc, sb.proc);
                prop_assert_eq!(sa.op, sb.op);
            }
        }
        // ... and the traced engine actually recorded something.
        let rec = traced.telemetry().recorder().expect("enabled");
        prop_assert!(rec.event_count() > 0, "no trace events recorded");
        let metrics = traced.telemetry().metrics_json().expect("enabled");
        prop_assert!(metrics.contains("griffin_sched_decisions_total"));
        prop_assert!(metrics.contains("griffin_step_ns"));
    }

    /// Hybrid accounting: the per-step durations in the trace sum
    /// exactly (integer virtual nanoseconds, no rounding slack) to the
    /// query's reported total.
    #[test]
    fn hybrid_step_durations_sum_to_total_time((lists, k) in index_and_query()) {
        let (idx, terms) = build(&lists);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let out = griffin.process_query(&idx, &terms, k, ExecMode::Hybrid);
        let step_sum: VirtualNanos = out.steps.iter().map(|s| s.time).sum();
        prop_assert_eq!(step_sum, out.time);
        prop_assert!(!out.steps.is_empty());
    }

    /// Timeline faithfulness: `run_with_timeline` returns the same
    /// latencies as `run`, its spans never overlap within a lane, every
    /// span starts no earlier than it became ready, and each job's
    /// last-stage end reproduces its returned latency.
    #[test]
    fn serving_timeline_is_a_valid_schedule(
        arrivals in vec(0u64..1_000_000, 1..40),
        stage_specs in vec(vec((0u8..2, 1u64..100_000), 0..4), 1..40),
        cores in 1usize..5,
    ) {
        let jobs: Vec<Job> = arrivals
            .iter()
            .zip(&stage_specs)
            .map(|(&arrival, stages)| Job {
                arrival: VirtualNanos::from_nanos(arrival),
                stages: stages
                    .iter()
                    .map(|&(r, d)| {
                        let res = if r == 0 { Resource::Cpu } else { Resource::Gpu };
                        StageReq::new(res, VirtualNanos::from_nanos(d))
                    })
                    .collect(),
            })
            .collect();

        let plain = ServingSim::new(cores).run(&jobs);
        let (latencies, timeline) = ServingSim::new(cores).run_with_timeline(&jobs);
        prop_assert_eq!(&plain, &latencies, "timeline recording changed the schedule");

        // One span per executed stage.
        let total_stages: usize = jobs.iter().map(|j| j.stages.len()).sum();
        prop_assert_eq!(timeline.spans.len(), total_stages);

        // Per-lane: sort by start, require end_i <= start_{i+1}.
        let mut lanes: std::collections::BTreeMap<(&str, usize), Vec<(VirtualNanos, VirtualNanos)>> =
            std::collections::BTreeMap::new();
        for s in &timeline.spans {
            prop_assert!(s.start >= s.ready, "span started before it was ready");
            prop_assert!(s.end >= s.start);
            lanes.entry((s.resource, s.lane)).or_default().push((s.start, s.end));
        }
        for ((resource, lane), mut spans) in lanes {
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(
                    w[0].1 <= w[1].0,
                    "overlapping spans on {resource}[{lane}]: {:?} then {:?}", w[0], w[1]
                );
            }
        }

        // Latency reproduction: completion of a job's last stage minus
        // its arrival equals the returned latency.
        for (j, job) in jobs.iter().enumerate() {
            if job.stages.is_empty() {
                prop_assert_eq!(latencies[j], VirtualNanos::ZERO);
                continue;
            }
            let last_end = timeline
                .spans
                .iter()
                .filter(|s| s.job == j)
                .map(|s| s.end)
                .max()
                .expect("job has spans");
            prop_assert_eq!(last_end - job.arrival, latencies[j]);
        }
    }

    /// Log-bucketed quantiles: for arbitrary samples, every estimated
    /// quantile brackets the exact order statistic from above by at
    /// most one log sub-bucket (≤ 25 % relative error), never exceeds
    /// the observed max, and the histogram preserves count/min/max.
    #[test]
    fn histogram_quantiles_bound_relative_error(samples in vec(0u64..10_000_000_000, 1..500)) {
        let mut h = Histogram::default();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());

        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            let est = h.quantile(q);
            // The histogram's convention: the rank-⌈q·n⌉ sample, 1-based.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            prop_assert!(est <= h.max());
            prop_assert!(
                est >= exact && est as f64 <= exact as f64 * 1.25,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
    }
}
