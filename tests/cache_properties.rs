//! Cross-crate invariants of the multi-tier cache stack — the device
//! list LRU, the host decoded-list cache, and the query result cache —
//! plus its serving hooks (single-flight coalescing, serve-stale).
//!
//! The pins:
//!
//! 1. **Off means off** — with every tier disabled, runs with
//!    armed-but-no-op fault plans and forced co-execution splits stay
//!    bit-exact with the plain engine: identical top-k, identical step
//!    traces, identical virtual clock.
//! 2. **On means same bits, never-worse time** — enabling the tiers
//!    changes *when*, never *what*: result bits are identical and the
//!    workload's total virtual time does not regress.
//! 3. **Bounded means bounded** — after every single query, no tier
//!    holds more bytes than its budget.
//! 4. **Flagged means flagged** — stale serves and coalesced queries
//!    are explicit in outcomes and counters, never silent.
//! 5. **LRU is a stack algorithm** — under a Zipf request mix the
//!    result-cache hit count is monotone in cache size.
//!
//! Set `GRIFFIN_FAULT_SEED` to vary the workload and fault schedule
//! (the CI `cache-invariants` job sweeps a fixed set of seeds).

use griffin_server::{
    AdmissionConfig, GriffinServer, Outcome, OverloadPolicy, ServerConfig, SimConfig,
};
use griffin_suite::griffin::{
    CachedResult, CostModel, QueryRequest, ResultCache, SplitConfig, RESULT_CACHE_LOOKUP,
};
use griffin_suite::griffin_gpu_sim::FaultPlan;
use griffin_suite::griffin_workload::Zipf;
use griffin_suite::prelude::*;

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

struct Fixture {
    index: InvertedIndex,
    queries: Vec<Vec<TermId>>,
}

/// Workload derived from the fault seed, so the CI seed sweep varies
/// the inputs as well as the fault schedule.
fn fixture() -> Fixture {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(fault_seed() ^ 0xCAC4E);
    let spec = ListIndexSpec {
        num_terms: 20,
        num_docs: 400_000,
        max_list_len: 80_000,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: 8,
        ..Default::default()
    }
    .generate(&index, &mut rng);
    Fixture { index, queries }
}

/// Each query three times over: caches must not change the answer of a
/// repeat, and warm tiers get something to hit.
fn repeated_requests(fx: &Fixture) -> Vec<QueryRequest> {
    let mut reqs = Vec::new();
    for _ in 0..3 {
        for q in &fx.queries {
            reqs.push(QueryRequest::new(q.clone()).k(10));
        }
    }
    reqs
}

/// Cache sizing for one run. `device_bytes: None` keeps the engine's
/// default device LRU; the all-off configuration zeroes every tier.
#[derive(Clone, Copy)]
struct Tiers {
    result: Option<(usize, u64)>,
    host_bytes: u64,
    device_bytes: Option<u64>,
}

const ALL_OFF: Tiers = Tiers {
    result: None,
    host_bytes: 0,
    device_bytes: Some(0),
};

const ALL_ON: Tiers = Tiers {
    result: Some((64, 1 << 20)),
    host_bytes: 1 << 20,
    device_bytes: None,
};

fn run_requests(
    fx: &Fixture,
    reqs: &[QueryRequest],
    tiers: Tiers,
    split: Option<SplitConfig>,
    plan: Option<FaultPlan>,
) -> (Vec<GriffinOutput>, VirtualNanos) {
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    gpu.set_fault_plan(plan);
    let mut griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    if let Some((entries, bytes)) = tiers.result {
        griffin.set_result_cache(entries, bytes);
    }
    griffin.cpu.set_host_cache_budget(tiers.host_bytes);
    if let Some(bytes) = tiers.device_bytes {
        griffin.gpu.set_cache_budget(bytes);
    }
    if let Some(s) = split {
        griffin.scheduler.split = Some(s);
    }
    let outs: Vec<GriffinOutput> = reqs.iter().map(|r| griffin.run(&fx.index, r)).collect();
    let clock = gpu.now();
    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0, "caching must not leak device memory");
    (outs, clock)
}

fn ids(out: &GriffinOutput) -> Vec<u32> {
    out.topk.iter().map(|&(d, _)| d).collect()
}

fn forced(fraction: f64) -> SplitConfig {
    let model = CostModel::from_device(&DeviceConfig::test_tiny(), true);
    SplitConfig::forced(model, fraction)
}

// ---------------------------------------------------------------- pin 1

#[test]
fn caches_off_with_noop_plans_and_forced_splits_stays_bit_exact() {
    let fx = fixture();
    let reqs = repeated_requests(&fx);
    let seed = fault_seed();

    let mut bits_baseline: Option<Vec<Vec<u32>>> = None;
    for split in [None, Some(forced(0.5))] {
        let (bare, clock_bare) = run_requests(&fx, &reqs, ALL_OFF, split.clone(), None);
        let plan = FaultPlan::seeded(seed);
        assert!(plan.is_noop(), "a freshly seeded plan must inject nothing");
        let (armed, clock_armed) = run_requests(&fx, &reqs, ALL_OFF, split.clone(), Some(plan));

        assert_eq!(clock_bare, clock_armed, "virtual clocks must agree");
        for (a, b) in bare.iter().zip(&armed) {
            assert_eq!(a.topk, b.topk);
            assert_eq!(a.time, b.time);
            assert_eq!(a.steps, b.steps);
            assert!(!a.result_cache_hit && !b.result_cache_hit, "tier is off");
        }
        // Across split configurations only the bits are pinned (a split
        // legitimately reshapes the step timings).
        let bits: Vec<Vec<u32>> = bare.iter().map(ids).collect();
        match &bits_baseline {
            None => bits_baseline = Some(bits),
            Some(expect) => assert_eq!(&bits, expect, "forced split changed result bits"),
        }
    }
}

// ---------------------------------------------------------------- pin 2

#[test]
fn caches_on_keep_bits_identical_and_total_time_no_worse() {
    let fx = fixture();
    let reqs = repeated_requests(&fx);

    let (off, _) = run_requests(&fx, &reqs, ALL_OFF, None, None);
    let (on, _) = run_requests(&fx, &reqs, ALL_ON, None, None);

    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.topk, b.topk, "a cache tier changed result bits");
    }
    let total = |outs: &[GriffinOutput]| -> VirtualNanos { outs.iter().map(|o| o.time).sum() };
    assert!(
        total(&on) <= total(&off),
        "warm caches must never cost virtual time: on={:?} off={:?}",
        total(&on),
        total(&off)
    );
    // The repeats are exact duplicates, so the result cache must have
    // answered some of them — and flagged every one it did.
    assert!(
        on.iter().any(|o| o.result_cache_hit),
        "duplicate queries never hit the result cache"
    );
    assert!(
        off.iter().all(|o| !o.result_cache_hit),
        "a disabled result cache reported a hit"
    );
}

// ---------------------------------------------------------------- pin 3

#[test]
fn no_tier_ever_exceeds_its_byte_budget() {
    let fx = fixture();
    let reqs = repeated_requests(&fx);
    // Deliberately tight budgets so every tier is forced to evict.
    const RES_BYTES: u64 = 512;
    const HOST_BYTES: u64 = 64 * 1024;
    const DEV_BYTES: u64 = 128 * 1024;

    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    griffin.set_result_cache(64, RES_BYTES);
    griffin.cpu.set_host_cache_budget(HOST_BYTES);
    griffin.gpu.set_cache_budget(DEV_BYTES);

    for (i, req) in reqs.iter().enumerate() {
        griffin.run(&fx.index, req);
        let res = griffin.result_cache_stats().expect("tier enabled");
        assert!(
            res.bytes_resident <= RES_BYTES,
            "result cache over budget after query {i}: {} > {RES_BYTES}",
            res.bytes_resident
        );
        let host = griffin.cpu.host_cache_stats();
        assert!(
            host.bytes_resident <= HOST_BYTES,
            "host cache over budget after query {i}: {} > {HOST_BYTES}",
            host.bytes_resident
        );
        let dev = griffin.gpu.cache_stats();
        assert!(
            dev.bytes_resident <= DEV_BYTES,
            "device cache over budget after query {i}: {} > {DEV_BYTES}",
            dev.bytes_resident
        );
    }
    // The tight result-cache budget must actually have evicted.
    let res = griffin.result_cache_stats().expect("tier enabled");
    assert!(res.evictions > 0, "budget never forced an eviction");
    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0);
}

#[test]
fn result_cache_honours_both_bounds_directly() {
    let mut cache = ResultCache::new(4, 1_000);
    for i in 0..64u32 {
        let topk: Vec<(u32, f32)> = (0..(i % 7)).map(|d| (d, d as f32)).collect();
        cache.insert(
            format!("q{i}"),
            CachedResult {
                topk,
                time: VirtualNanos::from_nanos(u64::from(i) * 100),
            },
        );
        assert!(cache.len() <= 4, "entry bound violated at insert {i}");
        assert!(
            cache.stats().bytes_resident <= 1_000,
            "byte bound violated at insert {i}"
        );
    }
    assert!(cache.stats().evictions > 0);
}

// ---------------------------------------------------------------- pin 4

#[test]
fn concurrent_identical_queries_coalesce_in_the_serving_sim() {
    let fx = fixture();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    engine.set_result_cache(64, 1 << 20);

    // Five copies of one query land in the same instant: one leader
    // runs, four coalesce onto it instead of stampeding.
    let req = QueryRequest::new(fx.queries[0].clone()).k(10);
    let requests: Vec<QueryRequest> = (0..5).map(|_| req.clone()).collect();
    let server = GriffinServer::new(ServerConfig::default());
    let planned = server.plan(&engine, &fx.index, &requests);
    assert!(
        planned.iter().all(|p| p.coalesce_key.is_some()),
        "result cache on => every plan carries a single-flight key"
    );
    let arrivals = vec![VirtualNanos::ZERO; 5];
    let report = server.replay(&planned, &arrivals);

    assert_eq!(report.queries[0].outcome, Outcome::Completed);
    let coalesced = report
        .queries
        .iter()
        .filter(|q| q.outcome == Outcome::Coalesced)
        .count();
    assert_eq!(coalesced, 4, "four duplicates must coalesce on the leader");
    assert_eq!(report.stats.coalesced, 4);
    assert_eq!(report.stats.admitted, 1);
    // Followers finish exactly when the leader does.
    for q in &report.queries {
        assert_eq!(q.latency, report.queries[0].latency);
    }
    engine.gpu.shutdown();
}

#[test]
fn stale_serve_is_flagged_and_only_fires_under_the_policy() {
    let fx = fixture();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    engine.set_result_cache(64, 1 << 20);

    // Plan order seeds the cache: A runs first, so the *second* A is
    // planned with a cached answer available. B differs from A, keeping
    // the single-flight key from short-circuiting the overload below.
    let a = QueryRequest::new(fx.queries[0].clone()).k(10);
    let b = fx
        .queries
        .iter()
        .skip(1)
        .map(|q| QueryRequest::new(q.clone()).k(10))
        .find(|r| r.query != a.query)
        .expect("the log holds a second distinct query");
    let requests = vec![a.clone(), b, a];
    let serve_stale_config = |on: bool| ServerConfig {
        cpu_workers: 1,
        admission: AdmissionConfig {
            capacity: 1,
            policy: OverloadPolicy::Shed,
            serve_stale: on,
            ..Default::default()
        },
        batching: None,
    };

    let server = GriffinServer::new(serve_stale_config(true));
    let planned = server.plan(&engine, &fx.index, &requests);
    assert_eq!(
        planned[0].stale_available, None,
        "nothing cached before A ran"
    );
    let expected_cost = planned[2]
        .stale_available
        .expect("second A planned with a cached answer");
    assert!(expected_cost <= RESULT_CACHE_LOOKUP);

    // A1 at t=0 finishes; B then occupies the single slot; A2 arrives
    // while B runs — its key has been released, capacity is full, and
    // the stale answer is served, explicitly flagged.
    let t0 = VirtualNanos::ZERO;
    let after_a = planned[0].service_time + VirtualNanos::from_nanos(1);
    let arrivals = vec![t0, after_a, after_a + VirtualNanos::from_nanos(1)];
    let report = server.replay(&planned, &arrivals);
    assert_eq!(report.queries[0].outcome, Outcome::Completed);
    assert_eq!(report.queries[1].outcome, Outcome::Completed);
    assert_eq!(report.queries[2].outcome, Outcome::ServedStale);
    assert_eq!(report.queries[2].latency, Some(expected_cost));
    assert_eq!(report.stats.served_stale, 1);
    assert_eq!(report.stats.shed, 0);

    // Same replay with the policy off: the query is shed outright —
    // stale answers are never served silently or by default.
    let server_off = GriffinServer::new(serve_stale_config(false));
    let report_off = server_off.replay(&planned, &arrivals);
    assert_eq!(report_off.queries[2].outcome, Outcome::Shed);
    assert_eq!(report_off.stats.served_stale, 0);
    assert_eq!(report_off.stats.shed, 1);
    engine.gpu.shutdown();
}

// ---------------------------------------------------------------- pin 5

#[test]
fn zipf_hit_count_is_monotone_in_result_cache_size() {
    use rand::SeedableRng;
    let fx = fixture();
    // A Zipf-weighted stream over a pool of 8 distinct queries: the
    // head queries recur heavily, the tail rarely.
    let mut rng = rand::rngs::StdRng::seed_from_u64(fault_seed() ^ 0x21bf);
    let zipf = Zipf::new(fx.queries.len() as u64, 1.1);
    let stream: Vec<QueryRequest> = (0..120)
        .map(|_| {
            let rank = zipf.sample(&mut rng) as usize - 1;
            QueryRequest::new(fx.queries[rank].clone()).k(10)
        })
        .collect();

    // LRU is a stack algorithm: a larger cache's contents always
    // include a smaller one's, so hits can only grow with entries.
    let mut last_hits = 0u64;
    for entries in [1usize, 2, 4, 8] {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
        griffin.set_result_cache(entries, 1 << 20);
        for req in &stream {
            griffin.run(&fx.index, req);
        }
        let stats = griffin.result_cache_stats().expect("tier enabled");
        assert!(
            stats.hits >= last_hits,
            "hit count fell from {last_hits} to {} at {entries} entries",
            stats.hits
        );
        last_hits = stats.hits;
        griffin.gpu.shutdown();
    }
    assert!(last_hits > 0, "the Zipf head never hit an 8-entry cache");
}

// ----------------------------------------------------- scratch drive-by

#[test]
fn mixed_cached_uncached_terms_keep_decode_scratch_flat() {
    use griffin_suite::griffin_cpu::engine::Strategy;
    use griffin_suite::griffin_cpu::{QueryScratch, WorkCounters};

    let fx = fixture();
    let cpu = CpuEngine::new();
    cpu.set_host_cache_budget(1 << 20);
    // The longest query gives the most intersect steps to mix over.
    let query = fx
        .queries
        .iter()
        .max_by_key(|q| q.len())
        .expect("non-empty log")
        .clone();
    assert!(query.len() >= 2, "need a multi-term query");
    let order = cpu.plan(&fx.index, &query);

    let run_once = |scratch: &mut QueryScratch| {
        let mut w = WorkCounters::default();
        let mut inter = cpu.init_intermediate(&fx.index, order[0], &mut w);
        for &t in &order[1..] {
            inter = cpu.intersect_step_with(&fx.index, &inter, t, Strategy::Auto, &mut w, scratch);
        }
        (inter.docids, inter.scores)
    };

    // Pass 1 misses the host cache on every term and sets the scratch
    // high-water mark.
    let mut scratch = QueryScratch::default();
    let cold = run_once(&mut scratch);
    let capacities =
        |s: &QueryScratch| -> (usize, usize) { (s.block_buf.capacity(), s.tf_buf.capacity()) };
    let high_water = capacities(&scratch);

    // Pass 2: every list host-cached — decode is skipped entirely, and
    // the scratch must be reused, never regrown.
    for &t in &order {
        assert!(cpu.warm_host_cache(&fx.index, t));
    }
    let warm = run_once(&mut scratch);
    assert_eq!(cold, warm, "host-cache hits changed the intersection");
    assert_eq!(
        capacities(&scratch),
        high_water,
        "an all-cached pass regrew the decode scratch"
    );

    // Pass 3: mixed — only the longest list is cached, the rest decode
    // through the scratch again. Bits and capacities both hold.
    cpu.clear_host_cache();
    assert!(cpu.warm_host_cache(&fx.index, order[order.len() - 1]));
    let mixed = run_once(&mut scratch);
    assert_eq!(cold, mixed, "a mixed cached/uncached pass changed bits");
    assert_eq!(
        capacities(&scratch),
        high_water,
        "a mixed cached/uncached pass regrew the decode scratch"
    );
}
