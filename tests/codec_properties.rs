//! Property-based tests of the compression substrate: every codec must be
//! lossless for every sorted docID sequence, under every block size.

use griffin_codec::pfordelta::PforBlock;
use griffin_codec::{BlockedList, Codec, EfBlock};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: sorted, deduplicated docID lists with wildly mixed gaps.
fn docid_lists() -> impl Strategy<Value = Vec<u32>> {
    vec(0u32..50_000_000, 1..600).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_list_roundtrips_all_codecs(ids in docid_lists(),
                                          block_len in prop::sample::select(vec![32usize, 128, 256])) {
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = BlockedList::compress(&ids, codec, block_len);
            prop_assert_eq!(list.decompress().expect("intact list"), ids.clone(), "{:?}", codec);
            prop_assert_eq!(list.len(), ids.len());
        }
    }

    #[test]
    fn find_block_locates_every_member(ids in docid_lists()) {
        let list = BlockedList::compress(&ids, Codec::EliasFano, 128);
        for &d in ids.iter().step_by(7) {
            let blk = list.find_block(d).expect("member docid has a block");
            let mut decoded = Vec::new();
            list.decode_block_into(blk, &mut decoded).expect("intact block");
            prop_assert!(decoded.binary_search(&d).is_ok());
        }
        // Anything beyond the maximum maps to no block.
        prop_assert!(list.find_block(ids.last().unwrap().saturating_add(1)).is_none()
                     || *ids.last().unwrap() == u32::MAX);
    }

    #[test]
    fn ef_block_roundtrip_and_random_access(values in vec(0u32..100_000_000, 1..300)) {
        let mut sorted = values;
        sorted.sort_unstable();
        let blk = EfBlock::encode(&sorted);
        let mut out = Vec::new();
        blk.decode_into(0, &mut out).expect("intact block");
        prop_assert_eq!(&out, &sorted);
        // Random access agrees with sequential decode.
        let idx = sorted.len() / 2;
        prop_assert_eq!(blk.get(idx), sorted[idx]);
        // Word serialization is stable.
        let mut words = Vec::new();
        blk.to_words(&mut words);
        prop_assert_eq!(EfBlock::from_words(&words).expect("intact words"), blk);
    }

    #[test]
    fn pfordelta_block_roundtrips_any_values(values in vec(0u32..=u32::MAX, 0..300)) {
        let blk = PforBlock::encode(&values);
        let mut out = Vec::new();
        blk.decode_into(&mut out).expect("intact block");
        prop_assert_eq!(out, values);
    }

    #[test]
    fn compression_never_corrupts_skip_metadata(ids in docid_lists()) {
        let list = BlockedList::compress(&ids, Codec::PforDelta, 128);
        let mut elem = 0u32;
        for (i, s) in list.skips.iter().enumerate() {
            prop_assert_eq!(s.elem_start, elem);
            elem += s.count;
            prop_assert_eq!(s.first_docid, ids[s.elem_start as usize]);
            prop_assert_eq!(s.last_docid, ids[(elem - 1) as usize]);
            prop_assert_eq!(list.block_base(i),
                            if i == 0 { 0 } else { list.skips[i - 1].last_docid });
        }
        prop_assert_eq!(elem as usize, ids.len());
    }
}
