//! Latency-forensics invariants, over the full stack:
//!
//! * **Attribution is exact** — a [`griffin_telemetry::QueryProfile`]
//!   folded from the trace has self-times that sum *exactly* (integer
//!   nanoseconds, no epsilon) to the engine-reported query total, in
//!   every execution mode, under forced CPU+GPU splits, and under armed
//!   fault plans (transient faults, mid-query device loss);
//! * **The flight ring is bounded** — the tail recorder never retains
//!   more than its configured capacity, whatever the latency stream,
//!   and its retained/evicted accounting stays consistent;
//! * **Burn rate is monotone** — making strictly more events bad can
//!   never lower the SLO monitor's burn rate over any window.
//!
//! Set `GRIFFIN_FAULT_SEED` to vary the workloads and fault schedules.

use griffin_suite::griffin::{CostModel, SplitConfig};
use griffin_suite::griffin_gpu_sim::FaultPlan;
use griffin_suite::prelude::*;
use griffin_telemetry::Telemetry;
use proptest::collection::vec;
use proptest::prelude::*;

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF0CA)
}

struct Fixture {
    index: InvertedIndex,
    queries: Vec<Vec<TermId>>,
}

fn fixture() -> Fixture {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(fault_seed() ^ 0x9E3779B9);
    let spec = ListIndexSpec {
        num_terms: 20,
        num_docs: 500_000,
        max_list_len: 100_000,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: 10,
        ..Default::default()
    }
    .generate(&index, &mut rng);
    Fixture { index, queries }
}

/// Runs every fixture query in `mode` with telemetry (trace recorder +
/// device observer) attached, then checks each query's attribution tree
/// sums exactly to the engine-reported total.
fn assert_exact_attribution(
    fx: &Fixture,
    mode: ExecMode,
    split: Option<SplitConfig>,
    plan: Option<FaultPlan>,
    ctx: &str,
) {
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    gpu.set_fault_plan(plan);
    let telemetry = Telemetry::enabled();
    gpu.set_observer(telemetry.device_observer(gpu.config().warp_size));
    let mut griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    griffin.set_telemetry(telemetry.clone());
    if let Some(s) = split {
        griffin.scheduler.split = Some(s);
    }

    let mut expected = Vec::new();
    for q in &fx.queries {
        let out = griffin.process_query(&fx.index, q, 10, mode);
        let tq = telemetry.recorder().expect("enabled").current_query();
        expected.push((tq, out.time));
    }

    let profiles = telemetry.query_profiles();
    assert_eq!(
        profiles.len(),
        expected.len(),
        "one profile per query ({ctx})"
    );
    for (tq, time) in expected {
        let p = profiles
            .iter()
            .find(|p| p.query == tq)
            .unwrap_or_else(|| panic!("no profile for query {tq} ({ctx})"));
        assert_eq!(
            p.total, time,
            "profile total must equal GriffinOutput::time ({ctx})"
        );
        assert_eq!(
            p.attributed(),
            p.total,
            "self-times must sum exactly to the total ({ctx})"
        );
        // The folded export re-derives the same sum line by line.
        let folded_sum: u64 = p
            .folded()
            .lines()
            .filter_map(|l| l.rsplit_once(' '))
            .map(|(_, ns)| ns.parse::<u64>().expect("folded self-time"))
            .sum();
        assert_eq!(
            folded_sum,
            p.total.as_nanos(),
            "folded-stack lines must sum to the total ({ctx})"
        );
    }
}

fn forced(fraction: f64) -> SplitConfig {
    let model = CostModel::from_device(&DeviceConfig::test_tiny(), true);
    SplitConfig::forced(model, fraction)
}

#[test]
fn attribution_exact_in_every_mode() {
    let fx = fixture();
    for mode in [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid] {
        assert_exact_attribution(&fx, mode, None, None, &format!("{mode:?}"));
    }
}

#[test]
fn attribution_exact_under_forced_splits() {
    let fx = fixture();
    for fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        assert_exact_attribution(
            &fx,
            ExecMode::Hybrid,
            Some(forced(fraction)),
            None,
            &format!("split {fraction}"),
        );
    }
}

#[test]
fn attribution_exact_under_faults() {
    let fx = fixture();
    let seed = fault_seed();
    for (plan, ctx) in [
        (
            FaultPlan::seeded(seed).with_fault_rate(0.05),
            "5% transient",
        ),
        (FaultPlan::seeded(seed).lose_device_at(3), "device loss"),
    ] {
        for mode in [ExecMode::GpuOnly, ExecMode::Hybrid] {
            assert_exact_attribution(
                &fx,
                mode,
                None,
                Some(plan.clone()),
                &format!("{ctx} / {mode:?}"),
            );
        }
        assert_exact_attribution(
            &fx,
            ExecMode::Hybrid,
            Some(forced(0.5)),
            Some(plan.clone()),
            &format!("{ctx} / split 0.5"),
        );
    }
}

// ---- Flight-ring and burn-rate properties (pure data structures). ----

use griffin_server::{FlightConfig, FlightRecord, FlightRecorder, SloConfig, SloMonitor};
use griffin_telemetry::{Cause, Verdict};

fn record(i: usize, latency_ns: u64) -> FlightRecord {
    let latency = VirtualNanos::from_nanos(latency_ns);
    FlightRecord {
        query_index: i,
        trace_query: None,
        outcome: griffin_server::Outcome::Completed,
        latency,
        service: latency,
        queue_wait: VirtualNanos::ZERO,
        verdict: Verdict {
            cause: Cause::CpuCompute,
            dominant: latency,
            total: latency,
            cache_flips: 0,
        },
        profile: None,
        shards: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However adversarial the latency stream, the ring never holds more
    /// than `capacity` flights and its accounting identities hold.
    #[test]
    fn flight_ring_never_exceeds_capacity(
        latencies in vec(0u64..10_000_000, 1..200),
        capacity in 1usize..32,
        min_samples in 0u64..64,
    ) {
        let mut fr = FlightRecorder::new(FlightConfig {
            capacity,
            quantile: 0.9,
            min_samples,
        });
        for (i, &l) in latencies.iter().enumerate() {
            fr.observe(record(i, l));
            prop_assert!(fr.len() <= capacity, "ring exceeded its bound");
        }
        prop_assert_eq!(fr.observed_total(), latencies.len() as u64);
        prop_assert_eq!(fr.retained_total(), fr.evicted_total() + fr.len() as u64);
    }

    /// Flipping good events to bad can only raise (never lower) the burn
    /// rate, over every alert window.
    #[test]
    fn burn_rate_is_monotone_in_badness(
        goods in vec(any::<bool>(), 1..150),
        extra_bad in vec(any::<bool>(), 1..150),
    ) {
        let config = SloConfig::default();
        let windows: Vec<VirtualNanos> = config
            .windows
            .iter()
            .flat_map(|w| [w.long, w.short])
            .collect();
        let mut base = SloMonitor::new(config.clone());
        let mut worse = SloMonitor::new(config);
        let step = VirtualNanos::from_nanos(1_000);
        let mut now = VirtualNanos::ZERO;
        for (i, &good) in goods.iter().enumerate() {
            now += step;
            let flip = extra_bad.get(i).copied().unwrap_or(false);
            base.record(now, good);
            worse.record(now, good && !flip);
        }
        for w in windows {
            prop_assert!(
                worse.burn_rate(now, w) >= base.burn_rate(now, w),
                "more badness must not lower the burn rate (window {w:?})"
            );
        }
    }
}
