//! Property-based tests of the GPU simulator and its kernels against host
//! references: scan, MergePath, parallel binary search, Para-EF, and the
//! ranking kernels must all be bit-exact, and every launch must cost
//! virtual time.

use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_gpu::mergepath::{self, MergePathConfig};
use griffin_gpu::transfer::DeviceEfList;
use griffin_gpu::{bucket_select, gpu_binary, para_ef, radix_sort, scan};
use griffin_gpu_sim::{DeviceConfig, Gpu};
use proptest::collection::vec;
use proptest::prelude::*;

fn sorted_unique() -> impl Strategy<Value = Vec<u32>> {
    vec(0u32..1_000_000, 1..800).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn host_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter()
        .filter(|v| b.binary_search(v).is_ok())
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scan_matches_prefix_sum(data in vec(0u32..1000, 0..3000)) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let src = gpu.htod(&data).expect("device op");
        let t0 = gpu.now();
        let (dst, total) = scan::exclusive_scan(&gpu, &src, data.len()).expect("device op");
        prop_assert!(data.is_empty() || gpu.now() > t0);
        let got = gpu.dtoh(&dst).expect("device op");
        let mut acc = 0u32;
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc = acc.wrapping_add(v);
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn mergepath_equals_host_intersection(a in sorted_unique(), b in sorted_unique()) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let cfg = MergePathConfig::for_device(gpu.config());
        let da = gpu.htod(&a).expect("device op");
        let db = gpu.htod(&b).expect("device op");
        let m = mergepath::intersect(&gpu, &da, a.len(), &db, b.len(), &cfg).expect("device op");
        let got = gpu.dtoh_prefix(&m.docids, m.len).expect("device op");
        prop_assert_eq!(got, host_intersect(&a, &b));
    }

    #[test]
    fn gpu_binary_equals_host_intersection(short in sorted_unique(), long in sorted_unique()) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let compressed = BlockedList::compress(&long, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let dlong = DeviceEfList::upload(&gpu, &compressed).expect("device op");
        let dshort = gpu.htod(&short).expect("device op");
        let out = gpu_binary::intersect(&gpu, &dshort, short.len(), &dlong, DEFAULT_BLOCK_LEN)
            .expect("device op");
        let got = gpu.dtoh_prefix(&out.matches.docids, out.matches.len).expect("device op");
        prop_assert_eq!(got, host_intersect(&short, &long));
        // Needed blocks never exceed the total or the short length.
        prop_assert!(out.blocks_decoded <= compressed.num_blocks());
        prop_assert!(out.blocks_decoded <= short.len());
    }

    #[test]
    fn para_ef_is_bit_exact(ids in sorted_unique()) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let list = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let dev = DeviceEfList::upload(&gpu, &list).expect("device op");
        let out = para_ef::decompress(&gpu, &dev).expect("device op");
        prop_assert_eq!(gpu.dtoh(&out).expect("device op"), ids);
    }

    #[test]
    fn gpu_rankers_agree_with_each_other(scores in vec(0f32..1000.0, 1..2000), k in 1usize..30) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let n = scores.len();
        let docids: Vec<u32> = (0..n as u32).collect();
        let d = gpu.htod(&docids).expect("device op");
        let s = gpu.htod(&scores).expect("device op");
        let by_sort = radix_sort::top_k_by_sort(&gpu, &d, &s, n, k).expect("device op");
        let by_select = bucket_select::top_k_by_bucket_select(&gpu, &d, &s, n, k).expect("device op");
        let sc = |v: &[(u32, f32)]| v.iter().map(|&(_, x)| x).collect::<Vec<_>>();
        prop_assert_eq!(sc(&by_sort), sc(&by_select));
        // Both must equal the host reference scores.
        let mut reference = scores.clone();
        reference.sort_by(|x, y| y.partial_cmp(x).unwrap());
        reference.truncate(k.min(n));
        prop_assert_eq!(sc(&by_sort), reference);
    }

    #[test]
    fn device_memory_balances_after_kernel_pipelines(ids in sorted_unique()) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let list = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let dev = DeviceEfList::upload(&gpu, &list).expect("device op");
        let out = para_ef::decompress(&gpu, &dev).expect("device op");
        let before = gpu.mem_in_use();
        // A full intersection pipeline must free all its temporaries.
        let m = mergepath::intersect(
            &gpu, &out, ids.len(), &out, ids.len(),
            &MergePathConfig::for_device(gpu.config()),
        ).expect("device op");
        let extra = m.docids.size_bytes() + m.a_idx.size_bytes() + m.b_idx.size_bytes();
        prop_assert_eq!(gpu.mem_in_use(), before + extra);
        m.free(&gpu);
        prop_assert_eq!(gpu.mem_in_use(), before);
    }
}
