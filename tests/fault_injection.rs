//! Cross-crate fault-injection invariants.
//!
//! Two pins hold the whole robustness layer together:
//!
//! 1. **Off means off** — an armed-but-no-op fault plan is bit-exact with
//!    no plan at all: identical top-k, identical step traces, identical
//!    virtual clock.
//! 2. **Loss means degradation, never failure** — a sticky `DeviceLost`
//!    at *any* operation index leaves every query completing with the
//!    exact CPU-only answer, and step durations (including the
//!    `FaultRecovery` steps) still summing to the reported total.
//!
//! Set `GRIFFIN_FAULT_SEED` to explore other deterministic fault
//! schedules (the CI chaos job sweeps a fixed set of seeds).

use griffin_suite::griffin::StepOp;
use griffin_suite::griffin_gpu_sim::FaultPlan;
use griffin_suite::prelude::*;

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

struct Fixture {
    index: InvertedIndex,
    queries: Vec<Vec<TermId>>,
}

fn fixture() -> Fixture {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let spec = ListIndexSpec {
        num_terms: 20,
        num_docs: 500_000,
        max_list_len: 100_000,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: 12,
        ..Default::default()
    }
    .generate(&index, &mut rng);
    Fixture { index, queries }
}

fn ids(out: &GriffinOutput) -> Vec<u32> {
    out.topk.iter().map(|&(d, _)| d).collect()
}

fn step_sum(out: &GriffinOutput) -> VirtualNanos {
    out.steps.iter().map(|s| s.time).sum()
}

#[test]
fn armed_noop_plan_is_bit_exact_with_no_plan() {
    let fx = fixture();
    let seed = fault_seed();

    let run_all = |plan: Option<FaultPlan>| -> (Vec<GriffinOutput>, VirtualNanos) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        gpu.set_fault_plan(plan);
        let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
        let outs: Vec<GriffinOutput> = fx
            .queries
            .iter()
            .flat_map(|q| {
                [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid]
                    .map(|mode| griffin.process_query(&fx.index, q, 10, mode))
            })
            .collect();
        let clock = gpu.now();
        griffin.gpu.shutdown();
        assert_eq!(gpu.mem_in_use(), 0);
        (outs, clock)
    };

    let plan = FaultPlan::seeded(seed);
    assert!(plan.is_noop(), "a freshly seeded plan must inject nothing");
    let (bare, clock_bare) = run_all(None);
    let (armed, clock_armed) = run_all(Some(plan));

    assert_eq!(clock_bare, clock_armed, "virtual clocks must agree");
    for (a, b) in bare.iter().zip(&armed) {
        assert_eq!(a.topk, b.topk);
        assert_eq!(a.time, b.time);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.gpu_faults, 0);
        assert_eq!(b.gpu_faults, 0);
    }
}

#[test]
fn sticky_device_loss_at_any_index_degrades_but_never_fails() {
    let fx = fixture();
    let seed = fault_seed();

    // CPU-only ground truth, computed once on a healthy device.
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    let truth: Vec<Vec<u32>> = fx
        .queries
        .iter()
        .map(|q| ids(&griffin.process_query(&fx.index, q, 10, ExecMode::CpuOnly)))
        .collect();

    // Lose the device at a spread of operation indices, including deep
    // into the stream; every Hybrid query must still return the exact
    // CPU answer with exact step accounting.
    for lost_at in [0u64, 1, 2, 5, 11, 23, 47, 120, 400] {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        gpu.set_fault_plan(Some(FaultPlan::seeded(seed).lose_device_at(lost_at)));
        let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
        let mut saw_fault = false;
        for (q, expect) in fx.queries.iter().zip(&truth) {
            let out = griffin.process_query(&fx.index, q, 10, ExecMode::Hybrid);
            assert_eq!(&ids(&out), expect, "lost_at={lost_at}");
            assert_eq!(
                step_sum(&out),
                out.time,
                "steps must sum to the total (lost_at={lost_at})"
            );
            saw_fault |= out.gpu_faults > 0;
        }
        assert!(saw_fault, "device loss at {lost_at} must surface as faults");
        griffin.gpu.shutdown();
        assert_eq!(
            gpu.mem_in_use(),
            0,
            "no leaks under device loss (lost_at={lost_at})"
        );
    }
}

#[test]
fn random_fault_storm_preserves_answers_and_accounting() {
    let fx = fixture();
    let seed = fault_seed();

    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    let truth: Vec<Vec<u32>> = fx
        .queries
        .iter()
        .map(|q| ids(&griffin.process_query(&fx.index, q, 10, ExecMode::CpuOnly)))
        .collect();

    for rate in [0.001, 0.01, 0.2] {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        gpu.set_fault_plan(Some(FaultPlan::seeded(seed).with_fault_rate(rate)));
        let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
        for (q, expect) in fx.queries.iter().zip(&truth) {
            for mode in [ExecMode::GpuOnly, ExecMode::Hybrid] {
                let out = griffin.process_query(&fx.index, q, 10, mode);
                assert_eq!(&ids(&out), expect, "rate={rate} mode={mode:?}");
                assert_eq!(step_sum(&out), out.time, "rate={rate} mode={mode:?}");
            }
        }
        griffin.gpu.shutdown();
        assert_eq!(gpu.mem_in_use(), 0, "no leaks at fault rate {rate}");
    }
}

#[test]
fn fault_recovery_steps_appear_exactly_when_faults_escalate() {
    let fx = fixture();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    gpu.set_fault_plan(Some(FaultPlan::seeded(fault_seed()).lose_device_at(3)));
    let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    let q = &fx.queries[0];
    let out = griffin.process_query(&fx.index, q, 10, ExecMode::Hybrid);
    assert!(
        out.steps.iter().any(|s| s.op == StepOp::FaultRecovery),
        "an exhausted fault must leave a FaultRecovery step"
    );
    // Recovery steps carry real time: the wasted attempts plus the CPU
    // re-materialization are accounted, not hidden.
    let recovery: VirtualNanos = out
        .steps
        .iter()
        .filter(|s| s.op == StepOp::FaultRecovery)
        .map(|s| s.time)
        .sum();
    assert!(recovery.as_nanos() > 0);
    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0);
}
