//! Property tests of the query-plan layer: every generated AST must be
//! bit-exact against a brute-force set-algebra reference.
//!
//! The reference evaluates queries directly over the raw token lists the
//! corpus was built from, mirroring the f32 fold orders the planner
//! fixes (see `griffin::plan`): chains accumulate BM25 contributions in
//! stable df-sorted order, mixed ANDs intersect the term chain with the
//! complex children in AST order, ORs union left-to-right (overlap
//! scores add left + right), NOT keeps the left side's scores, phrases
//! score like their term chain and then filter positionally. If any
//! executor — CPU, GPU, hybrid per-step, co-executed splits, or the
//! pruned conjunctive path — folds in a different order, these tests
//! catch the single-ULP drift.
//!
//! Set `GRIFFIN_FAULT_SEED` to vary the corpus, the generated queries,
//! and the armed fault plans (the CI `plan-invariants` job sweeps a
//! fixed set of seeds).

use std::collections::HashMap;
use std::sync::OnceLock;

use griffin_suite::griffin::{CostModel, Query, QueryRequest, SplitConfig};
use griffin_suite::griffin_gpu_sim::FaultPlan;
use griffin_suite::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MODES: [ExecMode; 3] = [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid];
const VOCAB: usize = 30;

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

struct Fixture {
    index: InvertedIndex,
    /// The raw documents (word indices) — the reference's ground truth.
    docs: Vec<Vec<usize>>,
    /// word index -> TermId.
    term_of: Vec<TermId>,
    /// TermId -> word index.
    word_of: HashMap<TermId, usize>,
}

/// Corpus derived from the fault seed, so the CI seed sweep varies the
/// documents and queries as well as the fault schedules. The first
/// document contains every vocabulary word once, guaranteeing every
/// word resolves to a term.
fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(fault_seed() ^ 0x9E3779B9);
        let mut docs: Vec<Vec<usize>> = vec![(0..VOCAB).collect()];
        for _ in 0..240 {
            let len = rng.gen_range(10..=50);
            docs.push(
                (0..len)
                    .map(|_| {
                        // Rank-biased draw: low word indices are common,
                        // high ones rare — Zipf-ish df spread.
                        let u: f64 = rng.gen();
                        ((u * u * VOCAB as f64) as usize).min(VOCAB - 1)
                    })
                    .collect(),
            );
        }
        // Fine-grained blocks so chains span several blocks and the
        // pruned path's per-block bounds actually discriminate.
        let mut builder = IndexBuilder::new(Codec::EliasFano).with_block_len(32);
        for tokens in &docs {
            let words: Vec<String> = tokens.iter().map(|w| format!("w{w}")).collect();
            let refs: Vec<&str> = words.iter().map(String::as_str).collect();
            builder.add_document(&refs);
        }
        let index = builder.build();
        let term_of: Vec<TermId> = (0..VOCAB)
            .map(|w| index.lookup(&format!("w{w}")).expect("vocab doc covers w"))
            .collect();
        let word_of = term_of.iter().enumerate().map(|(w, &t)| (t, w)).collect();
        Fixture {
            index,
            docs,
            term_of,
            word_of,
        }
    })
}

// ---------------------------------------------------------------------
// The brute-force reference.
// ---------------------------------------------------------------------

fn tf(fx: &Fixture, d: u32, word: usize) -> u32 {
    fx.docs[d as usize].iter().filter(|&&x| x == word).count() as u32
}

/// AND-chain of terms: documents containing every term, scores folded in
/// stable df-sorted order — one left-associated f32 addition per term.
fn chain_ref(fx: &Fixture, terms: &[TermId]) -> Vec<(u32, f32)> {
    if terms.is_empty() {
        return Vec::new();
    }
    let mut sorted = terms.to_vec();
    sorted.sort_by_key(|&t| fx.index.doc_freq(t));
    let bm = fx.index.bm25();
    let meta = fx.index.meta();
    let mut out = Vec::new();
    'doc: for d in 0..fx.docs.len() as u32 {
        let mut score = 0.0f32;
        for (i, &t) in sorted.iter().enumerate() {
            let tf = tf(fx, d, fx.word_of[&t]);
            if tf == 0 {
                continue 'doc;
            }
            let idf = bm.idf(fx.index.num_docs(), fx.index.doc_freq(t) as u32);
            let c = bm.contribution(idf, tf, meta.doc_len(d), meta.avg_doc_len);
            score = if i == 0 { c } else { score + c };
        }
        out.push((d, score));
    }
    out
}

/// Phrase: scored like its term chain, then filtered by consecutive
/// occurrence in the ORIGINAL phrase order (scores untouched).
fn phrase_ref(fx: &Fixture, terms: &[TermId]) -> Vec<(u32, f32)> {
    let words: Vec<usize> = terms.iter().map(|t| fx.word_of[t]).collect();
    chain_ref(fx, terms)
        .into_iter()
        .filter(|&(d, _)| {
            fx.docs[d as usize]
                .windows(words.len())
                .any(|win| win == words.as_slice())
        })
        .collect()
}

fn union_ref(a: &[(u32, f32)], b: &[(u32, f32)]) -> Vec<(u32, f32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn intersect_ref(a: &[(u32, f32)], b: &[(u32, f32)]) -> Vec<(u32, f32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn difference_ref(a: &[(u32, f32)], b: &[(u32, f32)]) -> Vec<(u32, f32)> {
    let keep: Vec<u32> = b.iter().map(|&(d, _)| d).collect();
    a.iter()
        .copied()
        .filter(|(d, _)| keep.binary_search(d).is_err())
        .collect()
}

/// Evaluates a NORMALIZED query tree, mirroring the planner's lowering:
/// an AND's term children form one chain evaluated first, then each
/// complex child intersects in AST order.
fn eval_ref(fx: &Fixture, q: &Query) -> Vec<(u32, f32)> {
    match q {
        Query::Nothing => Vec::new(),
        Query::Term(t) => chain_ref(fx, &[*t]),
        Query::Phrase(ts) => phrase_ref(fx, ts),
        Query::And(children) => {
            let mut terms = Vec::new();
            let mut nodes = Vec::new();
            for c in children {
                if let Query::Term(t) = c {
                    terms.push(*t);
                }
            }
            if !terms.is_empty() {
                nodes.push(chain_ref(fx, &terms));
            }
            for c in children {
                if !matches!(c, Query::Term(_)) {
                    nodes.push(eval_ref(fx, c));
                }
            }
            let mut acc = nodes.remove(0);
            for part in &nodes {
                if acc.is_empty() {
                    break;
                }
                acc = intersect_ref(&acc, part);
            }
            acc
        }
        Query::Or(children) => {
            let mut acc = eval_ref(fx, &children[0]);
            for c in &children[1..] {
                acc = union_ref(&acc, &eval_ref(fx, c));
            }
            acc
        }
        Query::Not(a, b) => {
            let l = eval_ref(fx, a);
            if l.is_empty() {
                return l;
            }
            difference_ref(&l, &eval_ref(fx, b))
        }
    }
}

/// Mirror of `griffin_cpu::topk::top_k`: descending `total_cmp` score,
/// ties broken by ascending docID.
fn topk_ref(mut items: Vec<(u32, f32)>, k: usize) -> Vec<(u32, f32)> {
    items.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    items.truncate(k);
    items
}

// ---------------------------------------------------------------------
// Query generation.
// ---------------------------------------------------------------------

fn random_term(fx: &Fixture, rng: &mut StdRng) -> TermId {
    let u: f64 = rng.gen();
    fx.term_of[((u * u * VOCAB as f64) as usize).min(VOCAB - 1)]
}

/// A phrase that usually matches something: half the time a real window
/// of consecutive tokens from a random document, otherwise random words.
fn random_phrase(fx: &Fixture, rng: &mut StdRng) -> Query {
    let plen = rng.gen_range(2..=3usize);
    if rng.gen::<bool>() {
        let d = rng.gen_range(1..fx.docs.len());
        let doc = &fx.docs[d];
        if doc.len() > plen {
            let start = rng.gen_range(0..doc.len() - plen);
            return Query::Phrase(
                doc[start..start + plen]
                    .iter()
                    .map(|&w| fx.term_of[w])
                    .collect(),
            );
        }
    }
    Query::Phrase((0..plen).map(|_| random_term(fx, rng)).collect())
}

fn gen_query(fx: &Fixture, rng: &mut StdRng, depth: usize) -> Query {
    if depth == 0 {
        return if rng.gen_range(0..5) == 0 {
            random_phrase(fx, rng)
        } else {
            Query::Term(random_term(fx, rng))
        };
    }
    match rng.gen_range(0..100) {
        0..=29 => Query::Term(random_term(fx, rng)),
        30..=54 => Query::And(
            (0..rng.gen_range(2..=3))
                .map(|_| gen_query(fx, rng, depth - 1))
                .collect(),
        ),
        55..=74 => Query::Or(
            (0..rng.gen_range(2..=3))
                .map(|_| gen_query(fx, rng, depth - 1))
                .collect(),
        ),
        75..=87 => Query::Not(
            Box::new(gen_query(fx, rng, depth - 1)),
            Box::new(gen_query(fx, rng, depth - 1)),
        ),
        _ => random_phrase(fx, rng),
    }
}

fn step_sum(out: &GriffinOutput) -> VirtualNanos {
    out.steps.iter().map(|s| s.time).sum()
}

// ---------------------------------------------------------------------
// The properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated AST, in every execution mode, returns the
    /// reference's top-k — docIDs and scores bit-for-bit — and keeps the
    /// step-sum invariant.
    #[test]
    fn every_ast_matches_the_reference_in_every_mode(seed in 0u64..1 << 48) {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(seed ^ fault_seed());
        let q = gen_query(fx, &mut rng, 3).normalize();
        let k = [1usize, 3, 10, 100][rng.gen_range(0..4)];
        let expect = topk_ref(eval_ref(fx, &q), k);

        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
        for mode in MODES {
            let req = QueryRequest::from_query(q.clone()).k(k).mode(mode);
            let out = griffin.run(&fx.index, &req);
            prop_assert_eq!(&out.topk, &expect, "{:?} diverged on {:?}", mode, q);
            prop_assert_eq!(out.gpu_faults, 0, "healthy device");
            prop_assert_eq!(step_sum(&out), out.time, "step sum diverged ({:?})", mode);
        }
        griffin.gpu.shutdown();
        prop_assert_eq!(gpu.mem_in_use(), 0, "plan execution must not leak");
    }

    /// Co-executed splits and armed (no-op) fault plans are invisible:
    /// forced split fractions under an armed `GRIFFIN_FAULT_SEED` plan
    /// still return the reference's answer exactly.
    #[test]
    fn forced_splits_with_armed_fault_plans_stay_bit_exact(seed in 0u64..1 << 48) {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(seed ^ fault_seed() ^ 0x5917);
        let q = gen_query(fx, &mut rng, 3).normalize();
        let expect = topk_ref(eval_ref(fx, &q), 10);
        let plan = FaultPlan::seeded(fault_seed());
        prop_assert!(plan.is_noop(), "a freshly seeded plan must inject nothing");

        let model = CostModel::from_device(&DeviceConfig::test_tiny(), true);
        for fraction in [0.25, 0.75] {
            let gpu = Gpu::new(DeviceConfig::test_tiny());
            gpu.set_fault_plan(Some(plan.clone()));
            let mut griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
            griffin.scheduler.split = Some(SplitConfig::forced(model, fraction));
            let req = QueryRequest::from_query(q.clone()).k(10).mode(ExecMode::Hybrid);
            let out = griffin.run(&fx.index, &req);
            prop_assert_eq!(&out.topk, &expect, "fraction {} diverged on {:?}", fraction, q);
            prop_assert_eq!(out.gpu_faults, 0, "armed no-op plan must not fault");
            prop_assert_eq!(step_sum(&out), out.time);
            griffin.gpu.shutdown();
            prop_assert_eq!(gpu.mem_in_use(), 0);
        }
    }

    /// `parse(display(q)) == q` for every generated normalized AST.
    #[test]
    fn parser_round_trips_generated_asts(seed in 0u64..1 << 48) {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(seed ^ fault_seed() ^ 0xD15B1A);
        let q = gen_query(fx, &mut rng, 3).normalize();
        prop_assert!(q != Query::Nothing, "generation never yields Nothing");
        let text = q.display(fx.index.dictionary());
        let again = Query::parse(&fx.index, &text, false)
            .unwrap_or_else(|e| panic!("{q:?} displayed as unparseable {text:?}: {e}"));
        prop_assert_eq!(again, q, "round-trip changed the tree for {:?}", text);
    }

    /// Block-max pruning never changes a single docID or score, in any
    /// mode, and reports its statistics; on non-conjunctive trees the
    /// flag is ignored.
    #[test]
    fn pruned_topk_is_bit_exact_with_unpruned(seed in 0u64..1 << 48) {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(seed ^ fault_seed() ^ 0x9121);
        let terms: Vec<TermId> = (0..rng.gen_range(2..=4))
            .map(|_| random_term(fx, &mut rng))
            .collect();
        let k = [1usize, 10][rng.gen_range(0..2)];

        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
        for mode in MODES {
            let plain = QueryRequest::new(terms.clone()).k(k).mode(mode);
            let a = griffin.run(&fx.index, &plain);
            let b = griffin.run(&fx.index, &plain.clone().pruned(true));
            prop_assert_eq!(&a.topk, &b.topk, "pruning changed the top-k ({:?})", mode);
            prop_assert!(a.pruning.is_none(), "unpruned runs report no stats");
            let stats = b.pruning.expect("pruned conjunctions report stats");
            let f = stats.blocks_skipped_fraction();
            prop_assert!((0.0..=1.0).contains(&f), "skip fraction {} out of range", f);
            prop_assert_eq!(step_sum(&b), b.time);
        }

        // A non-conjunctive tree ignores the flag: identical output, no
        // pruning statistics.
        let q = Query::Or(vec![
            Query::Term(terms[0]),
            Query::And(terms[1..].iter().map(|&t| Query::Term(t)).collect()),
        ]);
        let req = QueryRequest::from_query(q).k(k);
        let a = griffin.run(&fx.index, &req);
        let b = griffin.run(&fx.index, &req.clone().pruned(true));
        prop_assert_eq!(&a.topk, &b.topk);
        prop_assert!(b.pruning.is_none(), "plan path reports no pruning stats");

        griffin.gpu.shutdown();
        prop_assert_eq!(gpu.mem_in_use(), 0);
    }
}

/// The degenerate tree: `Nothing` runs to an empty, zero-cost output in
/// every mode.
#[test]
fn nothing_runs_to_an_empty_output() {
    let fx = fixture();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    for mode in MODES {
        let req = QueryRequest::from_query(Query::Nothing).mode(mode);
        let out = griffin.run(&fx.index, &req);
        assert!(out.topk.is_empty());
        assert_eq!(out.time, VirtualNanos::ZERO);
        assert!(out.steps.is_empty());
    }
    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0);
}
