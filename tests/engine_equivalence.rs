//! Property-based cross-engine equivalence: for arbitrary synthetic
//! indexes and queries, the CPU engine, the GPU engine, every forced
//! intersection strategy, and the hybrid scheduler must produce identical
//! results — the core safety property of a system that migrates a live
//! query between processors.

use griffin::{ExecMode, Griffin};
use griffin_codec::Codec;
use griffin_cpu::engine::Strategy as CpuStrategy;
use griffin_cpu::{CpuEngine, WorkCounters};
use griffin_gpu_sim::{DeviceConfig, Gpu};
use griffin_index::{InvertedIndex, TermId};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: 2–4 posting lists of varied lengths over a shared docID
/// space, guaranteed some overlap by seeding from a common pool.
fn index_and_query() -> impl Strategy<Value = (Vec<Vec<u32>>, usize)> {
    (
        vec(0u32..40_000, 200..800), // shared pool
        vec(vec(0u32..40_000, 50..2_000), 2..4),
        any::<usize>(),
    )
        .prop_map(|(pool, mut lists, k)| {
            for l in &mut lists {
                // Mix in the shared pool so intersections are non-trivial.
                l.extend(pool.iter().step_by(3));
                l.sort_unstable();
                l.dedup();
            }
            (lists, k % 20 + 1)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cpu_gpu_hybrid_return_identical_topk((lists, k) in index_and_query()) {
        let idx = InvertedIndex::from_docid_lists(&lists, 50_000, Codec::EliasFano, 128);
        let terms: Vec<TermId> = (0..lists.len())
            .map(|i| idx.lookup(&format!("t{i}")).expect("term"))
            .collect();
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());

        let cpu = griffin.process_query(&idx, &terms, k, ExecMode::CpuOnly);
        let gpu_only = griffin.process_query(&idx, &terms, k, ExecMode::GpuOnly);
        let hybrid = griffin.process_query(&idx, &terms, k, ExecMode::Hybrid);

        let ids = |o: &griffin::GriffinOutput| o.topk.iter().map(|&(d, _)| d).collect::<Vec<_>>();
        prop_assert_eq!(ids(&cpu), ids(&gpu_only));
        prop_assert_eq!(ids(&cpu), ids(&hybrid));
        for ((_, a), (_, b)) in cpu.topk.iter().zip(&gpu_only.topk) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn cpu_strategies_agree((lists, _k) in index_and_query()) {
        let idx = InvertedIndex::from_docid_lists(&lists, 50_000, Codec::EliasFano, 128);
        let engine = CpuEngine::new();
        let t0 = idx.lookup("t0").expect("t0");
        let t1 = idx.lookup("t1").expect("t1");
        let mut w = WorkCounters::default();
        let inter = engine.init_intermediate(&idx, t0, &mut w);
        let mut results = Vec::new();
        for s in [CpuStrategy::Merge, CpuStrategy::SkipBinary, CpuStrategy::PureBinary] {
            let mut w = WorkCounters::default();
            results.push(engine.intersect_step(&idx, &inter, t1, s, &mut w));
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[0], &results[2]);
    }

    #[test]
    fn intersection_result_is_exactly_the_set_intersection((lists, _k) in index_and_query()) {
        let idx = InvertedIndex::from_docid_lists(&lists, 50_000, Codec::EliasFano, 128);
        let terms: Vec<TermId> = (0..lists.len())
            .map(|i| idx.lookup(&format!("t{i}")).expect("term"))
            .collect();
        let engine = CpuEngine::new();
        // k large enough to return the entire intersection.
        let out = engine.process_query(&idx, &terms, 1_000_000);
        // Host-side reference intersection.
        let mut reference: Vec<u32> = lists[0].clone();
        for l in &lists[1..] {
            reference.retain(|d| l.binary_search(d).is_ok());
        }
        let mut got: Vec<u32> = out.topk.iter().map(|&(d, _)| d).collect();
        got.sort_unstable();
        prop_assert_eq!(got, reference);
    }
}
