//! Cross-crate integration: text → index → all three execution modes.

use griffin_suite::prelude::*;

fn build_index() -> InvertedIndex {
    let docs = [
        "the gpu accelerates query processing in search engines",
        "cpu query processing relies on skip pointers",
        "search engines compress inverted lists with elias fano",
        "the merge path algorithm balances gpu load",
        "query latency drops when the gpu and cpu cooperate",
        "inverted lists store document identifiers in sorted order",
        "tail latency matters for interactive search",
        "the cpu and gpu each win on different query shapes",
        "compression ratio and decompression speed trade off",
        "griffin schedules query operations dynamically",
    ];
    let mut b = IndexBuilder::new(Codec::EliasFano);
    for d in docs {
        b.add_text(d);
    }
    b.build()
}

fn query(idx: &InvertedIndex, words: &[&str]) -> Vec<TermId> {
    words
        .iter()
        .map(|w| idx.lookup(w).expect("word in vocab"))
        .collect()
}

#[test]
fn all_modes_agree_on_text_corpus() {
    let idx = build_index();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());

    for words in [
        vec!["gpu", "query"],
        vec!["cpu", "query", "processing"],
        vec!["search", "engines"],
        vec!["the", "gpu", "cpu"],
        vec!["query", "latency"],
    ] {
        let q = query(&idx, &words);
        let cpu = griffin.process_query(&idx, &q, 10, ExecMode::CpuOnly);
        let gpu_only = griffin.process_query(&idx, &q, 10, ExecMode::GpuOnly);
        let hybrid = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);
        let ids = |o: &GriffinOutput| o.topk.iter().map(|&(d, _)| d).collect::<Vec<_>>();
        assert_eq!(ids(&cpu), ids(&gpu_only), "{words:?}");
        assert_eq!(ids(&cpu), ids(&hybrid), "{words:?}");
        for ((_, a), (_, b)) in cpu.topk.iter().zip(&hybrid.topk) {
            assert!((a - b).abs() < 1e-4, "{words:?}: {a} vs {b}");
        }
    }
}

#[test]
fn results_are_actually_conjunctive() {
    let idx = build_index();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
    let q = query(&idx, &["gpu", "query"]);
    let out = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);
    assert!(!out.topk.is_empty());
    // Verify each hit contains every term by checking the posting lists.
    for &(docid, _) in &out.topk {
        for &t in &q {
            let (ids, _) = idx.list(t).decompress();
            assert!(
                ids.binary_search(&docid).is_ok(),
                "doc {docid} missing term {t:?}"
            );
        }
    }
}

#[test]
fn ranking_is_descending_and_respects_k() {
    let idx = build_index();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
    let q = query(&idx, &["the", "query"]);
    for k in [1usize, 2, 5, 100] {
        let out = griffin.process_query(&idx, &q, k, ExecMode::Hybrid);
        assert!(out.topk.len() <= k);
        for w in out.topk.windows(2) {
            assert!(w[0].1 >= w[1].1, "scores must be non-increasing");
        }
    }
}

#[test]
fn synthetic_workload_pipeline_runs_end_to_end() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let spec = griffin_suite::griffin_workload::ListIndexSpec {
        num_terms: 16,
        num_docs: 300_000,
        max_list_len: 60_000,
        ..Default::default()
    };
    let (idx, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: 20,
        ..Default::default()
    }
    .generate(&idx, &mut rng);

    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
    for q in &queries {
        let cpu = griffin.process_query(&idx, q, 10, ExecMode::CpuOnly);
        let hyb = griffin.process_query(&idx, q, 10, ExecMode::Hybrid);
        let ids = |o: &GriffinOutput| o.topk.iter().map(|&(d, _)| d).collect::<Vec<_>>();
        assert_eq!(ids(&cpu), ids(&hyb));
        assert!(cpu.time.as_nanos() > 0);
        assert!(hyb.time.as_nanos() > 0);
    }
}

#[test]
fn serving_simulation_consumes_hybrid_traces() {
    use griffin_suite::griffin::serving::{Job, Resource, ServingSim, StageReq};
    use griffin_suite::griffin::{Proc, StepOp};

    let idx = build_index();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let griffin = Griffin::new(&gpu, idx.meta(), idx.block_len());
    let q = query(&idx, &["gpu", "query"]);
    let out = griffin.process_query(&idx, &q, 10, ExecMode::Hybrid);

    let job = Job {
        arrival: VirtualNanos::ZERO,
        stages: out
            .steps
            .iter()
            .map(|s| {
                let resource = match (s.proc, s.op) {
                    (Proc::Gpu, _) | (_, StepOp::Migrate) => Resource::Gpu,
                    (Proc::Cpu, _) => Resource::Cpu,
                };
                StageReq::new(resource, s.time)
            })
            .collect(),
    };
    let lat = ServingSim::new(4).run(&[job]);
    // Unloaded latency equals the sum of the stages.
    assert_eq!(lat[0], out.time);
}
