//! Scalar/SIMD kernel equivalence: the runtime-dispatched kernels in
//! `griffin_cpu::simd` must be *bit-exact* substitutes for their scalar
//! references — same decoded docids, same intersection results, same
//! `WorkCounters` (so virtual time never depends on which host ran the
//! query), same last-ulp top-k score bits under block-max pruning.
//!
//! The forced-path knob is process-global, so every test serializes on
//! one mutex and restores `ForceMode::Auto` on exit. Set
//! `GRIFFIN_FAULT_SEED` to explore other deterministic workloads.

use std::sync::{Mutex, MutexGuard, OnceLock};

use griffin_codec::{BlockedList, Codec};
use griffin_cpu::simd::{self, ForceMode};
use griffin_cpu::{decode, intersect, CpuEngine, WorkCounters};
use griffin_index::{InvertedIndex, TermId};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The forced kernel path is a process-global; tests flipping it must
/// not interleave. Poisoning is survivable — the state is an atomic.
fn forced_path_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15EA5E)
}

/// Runs `op` under the given forced path, restoring `Auto` afterwards.
fn with_path<T>(mode: ForceMode, op: impl FnOnce() -> T) -> T {
    simd::set_forced(mode);
    let out = op();
    simd::set_forced(ForceMode::Auto);
    out
}

/// Decodes `list` fully on both paths and requires identical outputs
/// *and* identical work counters.
fn assert_decode_paths_agree(list: &BlockedList, what: &str) {
    let (scalar, ws) = with_path(ForceMode::Scalar, || {
        let mut w = WorkCounters::default();
        (decode::decode_list(list, &mut w), w)
    });
    let (simd_out, wv) = with_path(ForceMode::Simd, || {
        let mut w = WorkCounters::default();
        (decode::decode_list(list, &mut w), w)
    });
    assert_eq!(scalar, simd_out, "{what}: decoded docids diverged");
    assert_eq!(ws, wv, "{what}: work counters diverged across paths");
}

/// Block lengths that exercise SIMD group boundaries: below one group,
/// exactly one group, unaligned tails, and the default.
const BLOCK_LENS: [usize; 6] = [1, 7, 8, 33, 128, 200];

#[test]
fn decode_bit_exact_across_block_lengths_and_codecs() {
    let _g = forced_path_lock();
    let mut rng = StdRng::seed_from_u64(fault_seed());
    for &block_len in &BLOCK_LENS {
        for len in [1usize, 2, 7, 31, 127, 128, 129, 500, 1000] {
            let mut ids: Vec<u32> = (0..len as u32)
                .map(|_| rng.gen_range(0..2_000_000))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
                let list = BlockedList::compress(&ids, codec, block_len);
                assert_decode_paths_agree(
                    &list,
                    &format!("{codec:?} len={len} block_len={block_len}"),
                );
            }
        }
    }
}

#[test]
fn decode_bit_exact_on_singletons_and_max_width_deltas() {
    let _g = forced_path_lock();
    // Singleton at zero, singleton at the top of the docid space.
    for &id in &[0u32, u32::MAX - 1] {
        for codec in [Codec::PforDelta, Codec::Varint] {
            let list = BlockedList::compress(&[id], codec, 128);
            assert_decode_paths_agree(&list, &format!("{codec:?} singleton {id}"));
        }
    }
    // Near-maximal deltas force 32-bit PforDelta slots (the raw-copy
    // path) and full-width varint bytes.
    let wide: Vec<u32> = vec![0, 1, u32::MAX / 2, u32::MAX - 2, u32::MAX - 1];
    for codec in [Codec::PforDelta, Codec::Varint] {
        let list = BlockedList::compress(&wide, codec, 3); // unaligned tail too
        assert_decode_paths_agree(&list, &format!("{codec:?} max-width deltas"));
    }
    // Elias–Fano with a clustered low range then a huge jump: stresses
    // the high-bits scan against the SIMD-unpacked low bits.
    let jump: Vec<u32> = (0..200u32).chain([1 << 30, (1 << 30) + 5]).collect();
    let list = BlockedList::compress(&jump, Codec::EliasFano, 64);
    assert_decode_paths_agree(&list, "EliasFano cluster+jump");
}

#[test]
fn skip_intersection_identical_results_and_counters() {
    let _g = forced_path_lock();
    let mut rng = StdRng::seed_from_u64(fault_seed() ^ 0x5EED);
    let mut long: Vec<u32> = (0..50_000u32)
        .map(|_| rng.gen_range(0..1_000_000))
        .collect();
    long.sort_unstable();
    long.dedup();
    // Half the short list hits, half misses — both compare outcomes run.
    let mut short: Vec<u32> = long
        .iter()
        .step_by(97)
        .copied()
        .chain((0..300).map(|_| rng.gen_range(0..1_000_000)))
        .collect();
    short.sort_unstable();
    short.dedup();
    for codec in [Codec::PforDelta, Codec::EliasFano] {
        let list = BlockedList::compress(&long, codec, 128);
        let run = |mode| {
            with_path(mode, || {
                let mut w = WorkCounters::default();
                let m = intersect::skip_intersect(&short, &list, &mut w);
                (m.docids, m.a_idx, m.b_idx, w)
            })
        };
        let a = run(ForceMode::Scalar);
        let b = run(ForceMode::Simd);
        assert_eq!(a, b, "{codec:?}: skip intersection diverged across paths");
    }
}

#[test]
fn pruned_query_bit_identical_across_paths() {
    let _g = forced_path_lock();
    let mut rng = StdRng::seed_from_u64(fault_seed() ^ 0xB10C);
    let pool: Vec<u32> = (0..3_000).map(|_| rng.gen_range(0..60_000)).collect();
    let lists: Vec<Vec<u32>> = (0..3)
        .map(|_| {
            let mut l: Vec<u32> = (0..rng.gen_range(2_000..8_000))
                .map(|_| rng.gen_range(0..60_000))
                .chain(pool.iter().step_by(2).copied())
                .collect();
            l.sort_unstable();
            l.dedup();
            l
        })
        .collect();
    for codec in [Codec::PforDelta, Codec::EliasFano] {
        let idx = InvertedIndex::from_docid_lists(&lists, 70_000, codec, 128);
        let terms: Vec<TermId> = (0..lists.len())
            .map(|i| idx.lookup(&format!("t{i}")).expect("term interned"))
            .collect();
        let engine = CpuEngine::new();
        let run = |mode| {
            with_path(mode, || {
                let out = engine.process_query_pruned(&idx, &terms, 10);
                (out.topk, out.time, out.counters, out.stats)
            })
        };
        let (topk_s, time_s, w_s, stats_s) = run(ForceMode::Scalar);
        let (topk_v, time_v, w_v, stats_v) = run(ForceMode::Simd);
        // Scores must match to the bit, not the epsilon: the SIMD bound
        // fold must preserve the exact f32 fold order.
        let bits = |topk: &[(u32, f32)]| {
            topk.iter()
                .map(|&(d, s)| (d, s.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            bits(&topk_s),
            bits(&topk_v),
            "{codec:?}: pruned top-k diverged"
        );
        assert_eq!(w_s, w_v, "{codec:?}: pruned counters diverged");
        assert_eq!(time_s, time_v, "{codec:?}: virtual time diverged");
        assert_eq!(stats_s, stats_v, "{codec:?}: prune stats diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn decode_paths_agree_on_arbitrary_lists(
        mut ids in vec(0u32..5_000_000, 1..1_200),
        block_len in 1usize..300,
    ) {
        ids.sort_unstable();
        ids.dedup();
        let _g = forced_path_lock();
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = BlockedList::compress(&ids, codec, block_len);
            let scalar = with_path(ForceMode::Scalar, || {
                decode::decode_list(&list, &mut WorkCounters::default())
            });
            let simd_out = with_path(ForceMode::Simd, || {
                decode::decode_list(&list, &mut WorkCounters::default())
            });
            prop_assert_eq!(&scalar, &ids, "{:?}: decode is not the identity", codec);
            prop_assert_eq!(scalar, simd_out, "{:?}: paths diverged", codec);
        }
    }
}
