//! Cross-crate invariants of the async-stream overlap layer.
//!
//! Three pins:
//!
//! 1. **Overlap is pure scheduling** — the pipeline on vs off is
//!    bit-exact (identical top-k and intersection traces) in every
//!    execution mode, including with an armed-but-no-op fault plan.
//! 2. **The clock is a critical path** — a pipelined query is never
//!    slower than its serial twin, and never faster than its busiest
//!    single engine (copy or compute): overlap hides time, it cannot
//!    invent it.
//! 3. **Streams serialize their own work** — the exported per-stream
//!    device timeline never overlaps two kernels on the compute engine
//!    (and never overlaps two transfers on the copy engine).
//!
//! Set `GRIFFIN_FAULT_SEED` to vary the workload and fault schedule (the
//! CI `overlap-invariants` job sweeps a fixed set of seeds).

use griffin_suite::griffin::StepOp;
use griffin_suite::griffin_gpu_sim::{FaultPlan, StreamKind};
use griffin_suite::prelude::*;
use griffin_telemetry::Telemetry;

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

struct Fixture {
    index: InvertedIndex,
    queries: Vec<Vec<TermId>>,
}

/// Workload derived from the fault seed, so the CI seed sweep varies the
/// inputs as well as the fault schedule.
fn fixture() -> Fixture {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(fault_seed() ^ 0x9E37_79B9);
    let spec = ListIndexSpec {
        num_terms: 20,
        num_docs: 500_000,
        max_list_len: 100_000,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: 10,
        ..Default::default()
    }
    .generate(&index, &mut rng);
    Fixture { index, queries }
}

fn run_all(fx: &Fixture, overlap: bool, plan: Option<FaultPlan>) -> Vec<GriffinOutput> {
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    gpu.set_fault_plan(plan);
    let mut griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    griffin.set_overlap(overlap);
    let outs = fx
        .queries
        .iter()
        .flat_map(|q| {
            [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid]
                .map(|mode| griffin.process_query(&fx.index, q, 10, mode))
        })
        .collect();
    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0, "overlap must not leak device memory");
    outs
}

#[test]
fn overlap_on_and_off_are_bit_exact() {
    let fx = fixture();
    for plan in [None, Some(FaultPlan::seeded(fault_seed()))] {
        if let Some(p) = &plan {
            assert!(p.is_noop(), "a freshly seeded plan must inject nothing");
        }
        let on = run_all(&fx, true, plan.clone());
        let off = run_all(&fx, false, plan);
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.topk, b.topk, "overlap changed results");
            assert_eq!(a.gpu_faults, 0);
            assert_eq!(b.gpu_faults, 0);
            // The traces agree on every functional quantity. Placement
            // may differ (the pipelined cost model moves the
            // profitability floor), so compare the intersection sizes —
            // those are properties of the query, not the schedule.
            // A co-executed split is still one intersection: its
            // post-step size matches the unsplit op's by construction.
            let sizes = |out: &GriffinOutput| -> Vec<usize> {
                out.steps
                    .iter()
                    .filter(|s| {
                        matches!(s.op, StepOp::Intersect(_) | StepOp::SplitIntersect { .. })
                    })
                    .map(|s| s.inter_len)
                    .collect()
            };
            assert_eq!(sizes(a), sizes(b), "intersection sizes diverged");
        }
    }
}

#[test]
fn pipelined_time_is_bounded_by_serial_sum_and_busiest_engine() {
    let fx = fixture();
    let gpu_serial = Gpu::new(DeviceConfig::test_tiny());
    let gpu_over = Gpu::new(DeviceConfig::test_tiny());
    let telemetry = Telemetry::enabled();
    gpu_over.set_observer(telemetry.device_observer(gpu_over.config().warp_size));
    let eng_serial = GpuEngine::new(&gpu_serial, fx.index.meta());
    let eng_over = GpuEngine::new(&gpu_over, fx.index.meta());
    eng_serial.set_overlap(false);

    for q in &fx.queries {
        let before: Vec<_> = telemetry
            .device_timeline()
            .expect("telemetry is enabled")
            .spans;
        let a = eng_serial
            .process_query(&fx.index, q, 10)
            .expect("healthy device");
        let b = eng_over
            .process_query(&fx.index, q, 10)
            .expect("healthy device");
        assert_eq!(a.topk, b.topk);
        assert!(
            b.time <= a.time,
            "pipelined {} > serial {} for {q:?}",
            b.time,
            a.time
        );
        // Lower bound: the critical path cannot undercut the busiest
        // single engine. Sum this query's spans per stream lane.
        let spans = telemetry.device_timeline().expect("enabled").spans;
        for lane in [StreamKind::Compute, StreamKind::Copy] {
            let busy: VirtualNanos = spans[before.len()..]
                .iter()
                .filter(|s| s.resource == lane.as_str())
                .map(|s| s.end - s.start)
                .sum();
            assert!(
                b.time >= busy,
                "pipelined {} < {} busy {} for {q:?}",
                b.time,
                lane.as_str(),
                busy
            );
        }
    }
    eng_serial.shutdown();
    eng_over.shutdown();
}

#[test]
fn exported_stream_timelines_never_overlap_within_an_engine() {
    let fx = fixture();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let telemetry = Telemetry::enabled();
    let mut griffin = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    griffin.set_telemetry(telemetry.clone());
    for q in &fx.queries {
        for mode in [ExecMode::GpuOnly, ExecMode::Hybrid] {
            griffin.process_query(&fx.index, q, 10, mode);
        }
    }
    let timeline = telemetry.device_timeline().expect("telemetry is enabled");
    // One engine per (stream, lane): the compute stream, and one DMA
    // lane per transfer direction (lane 0 htod, lane 1 dtoh).
    let engines = [
        (StreamKind::Compute, 0),
        (StreamKind::Copy, 0),
        (StreamKind::Copy, 1),
    ];
    let mut saw = [0usize; 3];
    for (i, (stream, lane)) in engines.into_iter().enumerate() {
        let mut spans: Vec<_> = timeline
            .spans
            .iter()
            .filter(|s| s.resource == stream.as_str() && s.lane == lane)
            .collect();
        spans.sort_by_key(|s| (s.start, s.end));
        saw[i] = spans.len();
        for w in spans.windows(2) {
            assert!(
                w[1].start >= w[0].end,
                "{}{} engine runs two ops at once: [{}, {}) then [{}, {})",
                stream.as_str(),
                lane,
                w[0].start,
                w[0].end,
                w[1].start,
                w[1].end
            );
        }
    }
    assert!(saw[0] > 0, "no kernels recorded on the compute lane");
    assert!(saw[1] > 0, "no uploads recorded on the copy lane");
    assert!(saw[2] > 0, "no downloads recorded on the copy lane");
    griffin.gpu.shutdown();
}
