//! Fleet scatter–gather invariants.
//!
//! Four pins hold the fleet layer together:
//!
//! 1. **Sharding is invisible** — for every (shards, replicas, k, mode)
//!    combination, including forced co-execution splits and
//!    armed-but-no-op fault plans on every device, the merged top-k is
//!    bit-identical to the unsharded engine's answer.
//! 2. **One replica is expendable** — killing any single replica before
//!    any query leaves every answer exact at coverage 1.0; failover is
//!    a latency event, never a results event.
//! 3. **Hedges are never double-billed** — across any regime,
//!    `busy_total == service_total − hedge_cancelled_saved`, and with
//!    hedging disabled nothing is ever saved.
//! 4. **Budget exhaustion degrades, never errors** — shrinking the
//!    retry budget under deadline pressure only moves coverage, with
//!    every shard still explicitly accounted in every answer.
//!
//! Set `GRIFFIN_FAULT_SEED` to explore other deterministic fault
//! schedules (the CI chaos job sweeps a fixed set of seeds).

use griffin_server::{
    ArrivingQuery, Fleet, FleetConfig, FleetDevices, HedgeConfig, RetryBudgetConfig,
};
use griffin_suite::griffin::{
    CostModel, FleetInfo, QueryRequest, ShardOutcome, ShardedIndex, SplitConfig,
};
use griffin_suite::griffin_gpu_sim::FaultPlan;
use griffin_suite::prelude::*;

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF1EE7)
}

struct Fixture {
    index: InvertedIndex,
    queries: Vec<Vec<TermId>>,
}

fn fixture(num_docs: u32, max_list_len: usize, num_queries: usize) -> Fixture {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let spec = ListIndexSpec {
        num_terms: 20,
        num_docs,
        max_list_len,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries,
        ..Default::default()
    }
    .generate(&index, &mut rng);
    Fixture { index, queries }
}

fn requests(fx: &Fixture, k: usize, mode: ExecMode) -> Vec<QueryRequest> {
    fx.queries
        .iter()
        .map(|q| QueryRequest::new(q.clone()).k(k).mode(mode))
        .collect()
}

fn unsharded_answers(fx: &Fixture, reqs: &[QueryRequest]) -> Vec<Vec<(u32, f32)>> {
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = Griffin::new(&gpu, fx.index.meta(), fx.index.block_len());
    reqs.iter().map(|r| engine.run(&fx.index, r).topk).collect()
}

fn assert_accounting(fleet: &Fleet<'_>, ctx: &str) {
    let stats = fleet.stats();
    assert_eq!(
        stats.busy_total,
        stats.service_total - stats.hedge_cancelled_saved,
        "hedge cancellation accounting diverged ({ctx})"
    );
}

fn assert_statuses_complete(info: &FleetInfo, shards: usize, ctx: &str) {
    assert_eq!(
        info.shards.len(),
        shards,
        "a shard went unaccounted ({ctx})"
    );
    for (s, st) in info.shards.iter().enumerate() {
        assert_eq!(st.shard, s, "shard statuses must be in shard order ({ctx})");
    }
}

// ---------------------------------------------------------------------
// Pin 1: sharding is invisible.
// ---------------------------------------------------------------------

#[test]
fn merged_topk_is_bit_exact_across_the_grid() {
    let fx = fixture(200_000, 40_000, 10);
    let seed = fault_seed();
    for &shards in &[1usize, 2, 3, 5] {
        let sharded = ShardedIndex::build(&fx.index, shards);
        for &replicas in &[1usize, 2] {
            for &(k, mode) in &[
                (1usize, ExecMode::Hybrid),
                (10, ExecMode::Hybrid),
                (10, ExecMode::CpuOnly),
                (100, ExecMode::GpuOnly),
            ] {
                let devices = FleetDevices::new(shards, replicas, &DeviceConfig::test_tiny());
                for gpu in devices.iter() {
                    // Armed but no-op: the RNG is consulted, nothing fires.
                    let plan = FaultPlan::seeded(seed);
                    assert!(plan.is_noop());
                    gpu.set_fault_plan(Some(plan));
                }
                let mut fleet = Fleet::new(&devices, &sharded, FleetConfig::default());
                let reqs = requests(&fx, k, mode);
                let expected = unsharded_answers(&fx, &reqs);
                for (req, want) in reqs.iter().zip(&expected) {
                    let out = fleet.run_query(req);
                    assert_eq!(
                        &out.topk, want,
                        "fleet answer diverged (shards={shards} replicas={replicas} k={k} mode={mode:?})"
                    );
                    let info = out.fleet.expect("fleet answers carry coverage");
                    assert_eq!(info.coverage, 1.0);
                    assert_statuses_complete(&info, shards, "grid");
                }
                assert_accounting(&fleet, "grid");
            }
        }
    }
}

#[test]
fn forced_splits_do_not_perturb_the_merge() {
    let fx = fixture(400_000, 80_000, 8);
    let sharded = ShardedIndex::build(&fx.index, 3);
    let reqs = requests(&fx, 10, ExecMode::Hybrid);
    let expected = unsharded_answers(&fx, &reqs);
    for &fraction in &[0.0, 0.35, 1.0] {
        let devices = FleetDevices::new(3, 2, &DeviceConfig::test_tiny());
        let mut fleet = Fleet::new(&devices, &sharded, FleetConfig::default());
        fleet.tune(|g| {
            let model = CostModel::from_device(&DeviceConfig::test_tiny(), true);
            g.scheduler.split = Some(SplitConfig::forced(model, fraction));
        });
        for (req, want) in reqs.iter().zip(&expected) {
            let out = fleet.run_query(req);
            assert_eq!(&out.topk, want, "split fraction {fraction} changed results");
            assert_eq!(out.fleet.expect("coverage").coverage, 1.0);
        }
        assert_accounting(&fleet, "forced splits");
    }
}

// ---------------------------------------------------------------------
// Pin 2: one replica is expendable.
// ---------------------------------------------------------------------

#[test]
fn killing_any_single_replica_changes_no_docids() {
    let fx = fixture(200_000, 40_000, 6);
    let shards = 3;
    let replicas = 2;
    let sharded = ShardedIndex::build(&fx.index, shards);
    let reqs = requests(&fx, 10, ExecMode::Hybrid);
    let expected = unsharded_answers(&fx, &reqs);

    // Kill each (shard, replica) in turn at each query index: the
    // survivor must carry the shard with no visible change.
    for victim_s in 0..shards {
        for victim_r in 0..replicas {
            for kill_at in 0..reqs.len() {
                let devices = FleetDevices::new(shards, replicas, &DeviceConfig::test_tiny());
                let mut fleet = Fleet::new(&devices, &sharded, FleetConfig::default());
                for (i, (req, want)) in reqs.iter().zip(&expected).enumerate() {
                    if i == kill_at {
                        fleet.kill_replica(victim_s, victim_r);
                    }
                    let out = fleet.run_query(req);
                    assert_eq!(
                        &out.topk, want,
                        "kill ({victim_s},{victim_r}) at query {kill_at} changed results"
                    );
                    let info = out.fleet.expect("coverage");
                    assert_eq!(
                        info.coverage, 1.0,
                        "one dead replica must not cost coverage"
                    );
                    assert!(info.complete());
                }
                assert_accounting(&fleet, "single kill");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pin 3: hedges are never double-billed.
// ---------------------------------------------------------------------

#[test]
fn hedge_accounting_never_double_counts_device_time() {
    let fx = fixture(400_000, 80_000, 64);
    let sharded = ShardedIndex::build(&fx.index, 2);
    let seed = fault_seed();
    let arrivals: Vec<ArrivingQuery> = fx
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| ArrivingQuery {
            request: QueryRequest::new(q.clone()).k(10).mode(ExecMode::GpuOnly),
            arrival: VirtualNanos::from_nanos(i as u64 * 50_000),
        })
        .collect();

    let run = |hedge_enabled: bool| {
        let devices = FleetDevices::new(2, 2, &DeviceConfig::test_tiny());
        for s in 0..2 {
            // Replica 0 of each shard is the straggler: fault recovery
            // inflates its service times so hedges have something to win.
            devices
                .device(s, 0)
                .set_fault_plan(Some(FaultPlan::seeded(seed).with_fault_rate(0.4)));
        }
        let config = FleetConfig {
            hedge: HedgeConfig {
                enabled: hedge_enabled,
                min_samples: 8,
                ..HedgeConfig::default()
            },
            budget: RetryBudgetConfig {
                per_query: 2,
                burst: 16.0,
                refill_per_query: 1.0,
            },
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(&devices, &sharded, config);
        let report = fleet.serve(&arrivals);
        let stats = *fleet.stats();
        assert_accounting(&fleet, "hedge regime");
        for q in &report.queries {
            let info = q.output.fleet.as_ref().expect("coverage");
            assert_eq!(info.coverage, 1.0, "hedging never drops a shard");
        }
        stats
    };

    let hedged = run(true);
    let unhedged = run(false);
    assert_eq!(unhedged.hedges, 0);
    assert_eq!(
        unhedged.hedge_cancelled_saved,
        VirtualNanos::ZERO,
        "nothing to cancel with hedging off"
    );
    assert!(hedged.hedge_wins <= hedged.hedges);
    // The regime is built so hedging actually engages; a vacuous pass
    // here would mean the invariant was never exercised.
    assert!(hedged.hedges > 0, "straggler regime must trigger hedges");
}

// ---------------------------------------------------------------------
// Pin 4: budget exhaustion degrades, never errors.
// ---------------------------------------------------------------------

#[test]
fn retry_budget_exhaustion_degrades_coverage_not_correctness() {
    let fx = fixture(400_000, 80_000, 48);
    let shards = 2;
    let sharded = ShardedIndex::build(&fx.index, shards);
    let seed = fault_seed();
    let deadline = VirtualNanos::from_millis(2);
    let arrivals: Vec<ArrivingQuery> = fx
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| ArrivingQuery {
            request: QueryRequest::new(q.clone())
                .k(10)
                .mode(ExecMode::GpuOnly)
                .deadline(deadline),
            arrival: VirtualNanos::from_nanos(i as u64 * 100_000),
        })
        .collect();

    let coverage_for = |per_query: u32, burst: f64| {
        let devices = FleetDevices::new(shards, 2, &DeviceConfig::test_tiny());
        for s in 0..shards {
            devices
                .device(s, 0)
                .set_fault_plan(Some(FaultPlan::seeded(seed).with_fault_rate(0.5)));
        }
        let config = FleetConfig {
            hedge: HedgeConfig {
                min_samples: 8,
                ..HedgeConfig::default()
            },
            budget: RetryBudgetConfig {
                per_query,
                burst,
                refill_per_query: if per_query == 0 { 0.0 } else { 1.0 },
            },
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(&devices, &sharded, config);
        let report = fleet.serve(&arrivals);
        assert_eq!(report.queries.len(), arrivals.len(), "every query answered");
        for q in &report.queries {
            let info = q.output.fleet.as_ref().expect("coverage");
            assert_statuses_complete(info, shards, "budget");
            for st in &info.shards {
                assert_ne!(
                    st.outcome,
                    ShardOutcome::Missing,
                    "replicas are alive; only deadline drops are allowed"
                );
            }
        }
        assert_accounting(&fleet, "budget");
        report.mean_coverage()
    };

    let starved = coverage_for(0, 0.0);
    let bounded = coverage_for(1, 4.0);
    let generous = coverage_for(2, 16.0);
    // Hedging only ever substitutes a faster answer, so more budget can
    // only help coverage (tolerance for histogram-feedback jitter).
    assert!(
        bounded + 0.05 >= starved && generous + 0.05 >= starved,
        "coverage must not collapse as budget grows (starved={starved:.3} bounded={bounded:.3} generous={generous:.3})"
    );
    assert!((0.0..=1.0).contains(&starved));
}
